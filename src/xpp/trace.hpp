// Cycle-accurate observability for the XPP runtime.
//
// The paper's claims are about *runtime behaviour* — pipelined token
// flow, PAE utilization, partial-reconfiguration timelines (Figs. 9-12,
// Table 1) — so the simulator must be able to show where cycles go, not
// just end-of-run totals.  This layer adds:
//
//  - a PerfCounters store: per-PAE fire / stall-on-input /
//    stall-on-output / idle cycles, per-net token occupancy and
//    backpressure, the per-configuration load/resident/release
//    timeline, and event-scheduler worklist depth;
//  - a Tracer that collects those counters from a Simulator, attached
//    via Simulator::attach_trace (nullptr detaches);
//  - a TraceSink interface with two exporters: ChromeTraceSink emits
//    trace-event JSON loadable in chrome://tracing / Perfetto (one
//    counter track per PAE row, one timeline track per configuration)
//    and CsvTraceSink dumps every counter as CSV.
//
// Determinism and cost are the load-bearing properties (mirroring the
// fault layer):
//
//  - All counters are sampled at cycle boundaries (post-commit), where
//    both schedulers hold bit-identical net/object state, so kScan and
//    kEventDriven produce *identical* counters for the same workload
//    (differentially tested in tests/xpp/test_trace.cpp).  The only
//    exception is worklist depth, which measures the event scheduler
//    itself and is empty under kScan.
//  - The tracer only ever reads simulator state; attaching one cannot
//    change behaviour (tracing on/off is bit-identical).
//  - Detached, the simulator pays one pointer compare per cycle and one
//    per object fire — the same inline null-check pattern as
//    FaultInjector::armed() (bench_trace guards the < 1% envelope).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/xpp/net.hpp"
#include "src/xpp/object.hpp"
#include "src/xpp/types.hpp"

namespace rsp::xpp {

class Simulator;

/// Per-PAE (per-object) counters over the traced window.  Every traced
/// cycle is classified into exactly one of fire / stall-in / stall-out
/// / idle, so fires + stalls + idle == traced_cycles:
///  - fires: the object fired;
///  - stall_in_cycles: work was waiting (a readable token on some bound
///    input, or externally queued samples) but a bound input was empty;
///  - stall_out_cycles: work was waiting, inputs were ready, but a
///    bound output net was still full (sink not consuming);
///  - idle_cycles: nothing to do (no consumable input anywhere), or the
///    firing rule was unsatisfied for internal reasons.
struct PaeCounters {
  long long seq = 0;    ///< registration order (stable sort key)
  int group = -1;       ///< Simulator group id
  int config = -1;      ///< owning ConfigId (-1 if not manager-loaded)
  std::string name;
  ObjectKind kind = ObjectKind::kAlu;
  int row = -1;         ///< placement (annotated by the manager; -1 I/O)
  int col = -1;
  long long fires = 0;
  long long stall_in_cycles = 0;
  long long stall_out_cycles = 0;
  long long idle_cycles = 0;
  long long traced_cycles = 0;

  friend bool operator==(const PaeCounters&, const PaeCounters&) = default;
};

/// Per-net counters over the traced window.
///  - occupied_cycles: boundaries at which a token was resident;
///  - backpressure_cycles: boundaries at which the resident token had
///    already survived a full cycle (its sinks did not drain it), i.e.
///    cycles the net refused its producer a write slot;
///  - tokens: tokens latched (committed staged values + preloads).
struct NetCounters {
  long long seq = 0;
  int group = -1;
  int config = -1;
  std::string label;    ///< producer-port label, see net_label()
  long long occupied_cycles = 0;
  long long backpressure_cycles = 0;
  long long tokens = 0;
  long long traced_cycles = 0;

  friend bool operator==(const NetCounters&, const NetCounters&) = default;
};

/// One span of the per-configuration reconfiguration timeline.
struct ConfigSpan {
  enum class Kind : std::uint8_t {
    kLoad,      ///< configuration bus busy writing the configuration
    kResident,  ///< configuration live on the array
    kRelease,   ///< resources being returned
  };
  Kind kind = Kind::kLoad;
  int config = -1;
  std::string name;
  long long begin_cycle = 0;
  long long end_cycle = -1;  ///< -1: still open at end of trace

  friend bool operator==(const ConfigSpan&, const ConfigSpan&) = default;
};

[[nodiscard]] const char* config_span_kind_name(ConfigSpan::Kind k);

/// Fires per PAE row within one sample interval (Chrome counter track).
struct RowSample {
  long long cycle = 0;  ///< interval end cycle
  int row = -1;         ///< -1: objects without a placement (I/O)
  long long fires = 0;

  friend bool operator==(const RowSample&, const RowSample&) = default;
};

/// Event-scheduler worklist depth within one sample interval.  Only
/// produced under SchedulerKind::kEventDriven — this measures the
/// scheduler, not the machine, so it is excluded from scan/event
/// counter-equality comparisons.
struct WorklistSample {
  long long cycle = 0;
  long long peak = 0;   ///< largest per-cycle drained worklist
  long long total = 0;  ///< sum of drained entries over the interval
};

/// Everything the tracer knows, in deterministic order (registration
/// sequence).  Objects and nets of released configurations are retained
/// ("retired"), so a partial-reconfiguration run keeps its full
/// history.
struct PerfCounters {
  long long begin_cycle = 0;
  long long end_cycle = 0;
  std::vector<PaeCounters> paes;
  std::vector<NetCounters> nets;
  std::vector<ConfigSpan> config_timeline;
  std::vector<RowSample> row_samples;
  std::vector<WorklistSample> worklist_samples;
  long long worklist_peak = 0;

  [[nodiscard]] long long traced_cycles() const {
    return end_cycle - begin_cycle;
  }
};

/// Exporter interface over a finished (or in-flight) counter snapshot.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void write(const PerfCounters& counters, std::ostream& os) const = 0;
};

/// Chrome trace-event JSON (load in chrome://tracing or
/// https://ui.perfetto.dev): pid 1 carries one counter track per PAE
/// row plus the worklist-depth track, pid 2 one timeline track per
/// configuration (load / resident / release spans).  Timestamps are
/// simulated cycles (rendered as microseconds).
class ChromeTraceSink final : public TraceSink {
 public:
  void write(const PerfCounters& counters, std::ostream& os) const override;
};

/// Flat CSV dump of every per-object and per-net counter.
class CsvTraceSink final : public TraceSink {
 public:
  void write(const PerfCounters& counters, std::ostream& os) const override;
};

struct TraceOptions {
  /// Cycles per Chrome counter sample (row activity, worklist depth).
  long long sample_interval = 64;
};

/// Collects PerfCounters from one Simulator.  Attach with
/// Simulator::attach_trace(&tracer) *before* loading configurations so
/// the manager can annotate objects with their placement and owning
/// ConfigId; counters cover the window from attach onward.  One tracer
/// observes one simulator at a time.
///
/// pause()/resume() gate every collection callback behind the inline
/// tracing() flag — a paused tracer costs the simulator exactly the
/// detached-tracer null-check path (measured by bench_trace).
class Tracer final : public TraceHooks {
 public:
  explicit Tracer(TraceOptions opts = {}) : opts_(opts) {}

  /// Deterministic snapshot: retired + live entries in registration
  /// order, timeline spans, and sampled series (including the residual
  /// partial interval).
  [[nodiscard]] PerfCounters snapshot() const;

  /// Convenience: sink.write(snapshot(), os).
  void export_to(const TraceSink& sink, std::ostream& os) const;

  void pause() { tracing_ = false; }
  void resume() { tracing_ = true; }

  /// Live counters of @p net (nullptr if untracked) — used by
  /// Simulator::diagnose to rank a deadlock's hottest blocked nets.
  [[nodiscard]] const NetCounters* net_counters(const Net* net) const;
  /// Live counters of @p obj (nullptr if untracked).
  [[nodiscard]] const PaeCounters* object_counters(const Object* obj) const;

  /// Live (non-retired) entry counts — remove_group must shrink these.
  [[nodiscard]] std::size_t live_objects() const { return objs_.size(); }
  [[nodiscard]] std::size_t live_nets() const { return nets_.size(); }

  // -- collection callbacks (Simulator / ConfigurationManager) ----------
  /// Simulator::attach_trace: the traced window starts at @p cycle.
  void on_attach(long long cycle);
  /// A group joined the simulator: register its objects and nets.
  void on_group_added(int group,
                      const std::vector<std::unique_ptr<Object>>& objects,
                      const std::vector<std::unique_ptr<Net>>& nets);
  /// A group is being removed: retire its entries (counters survive in
  /// the snapshot; the live pointer keys are purged — no dangling
  /// entries after partial reconfiguration).
  void on_group_removed(const std::vector<std::unique_ptr<Object>>& objects,
                        const std::vector<std::unique_ptr<Net>>& nets);
  /// Cycle-boundary sampling walk (invoked by Simulator::step after the
  /// commit phase, before fault injection).
  void on_cycle(const Simulator& sim);
  /// Per-cycle worklist drain size (event-driven scheduler only).
  void on_worklist(std::size_t drained);
  /// ConfigurationManager annotations.
  void annotate_object(const Object* obj, int config, int row, int col);
  void annotate_group(int group, int config);
  void on_config_load(int config, const std::string& name, long long begin,
                      long long end);
  void on_config_release(int config, const std::string& name, long long begin,
                         long long end);

  // TraceHooks (called from Object::clock on every successful fire).
  void object_fired(Object& obj, long long cycle) override;

 private:
  /// The compiled scheduler applies each replayed cycle's classification
  /// deltas (precomputed at compile time from the period's symbolic
  /// boundary states) straight into these stores, using the same
  /// per-cycle granularity as on_cycle — so counters AND interval row
  /// samples stay bit-identical to the interpreting schedulers while
  /// epochs replay (see src/xpp/compiled.cpp, apply_trace_phase).
  friend class CompiledProgram;

  struct NetEntry {
    NetCounters c;
    std::uint64_t last_generation = 0;
  };

  void flush_interval(long long cycle);

  TraceOptions opts_;
  std::unordered_map<const Object*, PaeCounters> objs_;
  std::unordered_map<const Net*, NetEntry> nets_;
  std::vector<PaeCounters> retired_objs_;
  std::vector<NetCounters> retired_nets_;
  std::vector<ConfigSpan> timeline_;
  std::vector<RowSample> row_samples_;
  std::vector<WorklistSample> worklist_samples_;
  long long seq_ = 0;
  long long begin_cycle_ = 0;
  long long last_cycle_ = 0;
  // Current sample-interval accumulators.
  long long interval_cycles_ = 0;
  std::unordered_map<int, long long> interval_row_fires_;
  bool saw_worklist_ = false;
  long long wl_interval_peak_ = 0;
  long long wl_interval_total_ = 0;
  long long wl_peak_ = 0;
};

}  // namespace rsp::xpp

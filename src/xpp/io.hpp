// External streaming I/O channels.
//
// "Four dual-channel Input/Output ports, capable of functioning in
// streaming and RAM-addressing modes, handle external communication"
// (paper, Section 4).  We model the streaming mode: an input channel
// feeds a software-supplied sample queue into the array at up to one
// word per cycle; an output channel drains results into a vector.
#pragma once

#include <deque>
#include <utility>
#include <vector>

#include "src/xpp/object.hpp"

namespace rsp::xpp {

/// Number of independent streaming channels (4 dual-channel ports).
inline constexpr int kIoChannels = 8;

class InputObject final : public Object {
 public:
  explicit InputObject(std::string name)
      : Object(std::move(name), ObjectKind::kInput) {}

  /// Queue samples for streaming into the array.
  void feed(const std::vector<Word>& samples) {
    queue_.insert(queue_.end(), samples.begin(), samples.end());
    if (!samples.empty()) wake();
  }
  void feed(Word v) {
    queue_.push_back(v);
    wake();
  }

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::size_t external_pending() const override {
    return queue_.size();
  }

  /// Fault hooks: lose / duplicate the word at the head of the queue
  /// (a corrupted channel handshake).  Return false when empty.  Queue
  /// state at a cycle boundary is scheduler-independent, so injected
  /// drops/dups replay bit-identically under kScan and kEventDriven.
  bool drop_front() {
    if (queue_.empty()) return false;
    queue_.pop_front();
    return true;
  }
  bool dup_front() {
    if (queue_.empty()) return false;
    queue_.push_front(queue_.front());
    return true;
  }

 protected:
  bool do_fire() override {
    if (queue_.empty() || !out_ready(0)) return false;
    out_write(0, queue_.front());
    queue_.pop_front();
    return true;
  }

 private:
  friend class CompiledProgram;  ///< pops the queue during armed epochs
  friend class BatchedReplayEngine;  ///< per-lane queue pops
  friend class SnapshotAccess;  ///< bit-exact save/restore (snapshot.hpp)

  std::deque<Word> queue_;
};

class OutputObject final : public Object {
 public:
  explicit OutputObject(std::string name)
      : Object(std::move(name), ObjectKind::kOutput) {}

  /// All words received so far.
  [[nodiscard]] const std::vector<Word>& data() const { return data_; }

  /// Move the received words out, clearing the sink.
  [[nodiscard]] std::vector<Word> take() { return std::exchange(data_, {}); }

 protected:
  bool do_fire() override {
    if (!in_ready(0)) return false;
    data_.push_back(in_peek(0));
    in_consume(0);
    return true;
  }

 private:
  friend class CompiledProgram;  ///< appends drained words directly
  friend class BatchedReplayEngine;  ///< per-lane appends
  friend class SnapshotAccess;  ///< bit-exact save/restore (snapshot.hpp)

  std::vector<Word> data_;
};

}  // namespace rsp::xpp

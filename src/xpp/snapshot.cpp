#include "src/xpp/snapshot.hpp"

#include <array>
#include <cstdio>
#include <utility>

#include "src/xpp/builder.hpp"
#include "src/xpp/compiled.hpp"
#include "src/xpp/fault.hpp"

namespace rsp::xpp {

namespace snap {

namespace {

/// Reflected CRC-32/IEEE lookup table, built once (same polynomial as
/// the bitwise dedhw::Crc engine behind config_crc32 — cross-checked in
/// tests/xpp/test_snapshot.cpp).
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

constexpr std::size_t kMagicLen = 8;
/// magic + version + payload length + payload CRC.
constexpr std::size_t kFrameHeader = kMagicLen + 4 + 8 + 4;

std::uint32_t read_le32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

std::uint64_t read_le64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n) {
  const auto& t = crc_table();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) c = t[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::string frame(const char magic[8], std::uint32_t version,
                  const std::string& payload) {
  Writer h;
  std::string out(magic, kMagicLen);
  h.u32(version);
  h.u64(payload.size());
  h.u32(crc32(payload.data(), payload.size()));
  out += h.bytes();
  out += payload;
  return out;
}

std::string_view unframe(const char magic[8], std::uint32_t version,
                         std::string_view bytes) {
  if (bytes.size() < kFrameHeader) {
    throw SnapshotError("snapshot: file truncated (" +
                        std::to_string(bytes.size()) + " byte(s), header is " +
                        std::to_string(kFrameHeader) + ")");
  }
  if (bytes.compare(0, kMagicLen, std::string_view(magic, kMagicLen)) != 0) {
    throw SnapshotError("snapshot: bad magic (expected '" +
                        std::string(magic, kMagicLen) + "', got '" +
                        std::string(bytes.substr(0, kMagicLen)) + "')");
  }
  const std::uint32_t got_version = read_le32(bytes.data() + kMagicLen);
  if (got_version != version) {
    throw SnapshotError("snapshot: unsupported version " +
                        std::to_string(got_version) + " (this build reads " +
                        std::to_string(version) + ")");
  }
  const std::uint64_t len = read_le64(bytes.data() + kMagicLen + 4);
  const std::uint32_t want_crc = read_le32(bytes.data() + kMagicLen + 12);
  if (len != bytes.size() - kFrameHeader) {
    throw SnapshotError("snapshot: payload length mismatch (header says " +
                        std::to_string(len) + ", file carries " +
                        std::to_string(bytes.size() - kFrameHeader) + ")");
  }
  const std::string_view payload = bytes.substr(kFrameHeader);
  const std::uint32_t got_crc = crc32(payload.data(), payload.size());
  if (got_crc != want_crc) {
    throw SnapshotError("snapshot: payload CRC mismatch (stored " +
                        std::to_string(want_crc) + ", computed " +
                        std::to_string(got_crc) + ") — file corrupted");
  }
  return payload;
}

void write_file_atomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw SnapshotError("snapshot: cannot open '" + tmp + "' for writing");
  }
  const std::size_t wrote = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (wrote != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    throw SnapshotError("snapshot: short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SnapshotError("snapshot: cannot rename '" + tmp + "' to '" + path +
                        "'");
  }
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw SnapshotError("snapshot: cannot open '" + path + "' for reading");
  }
  std::string bytes;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) throw SnapshotError("snapshot: read error on '" + path + "'");
  return bytes;
}

}  // namespace snap

namespace {

constexpr char kSnapshotMagic[8] = {'R', 'S', 'P', 'S', 'N', 'A', 'P', '1'};

// ---------------------------------------------------------------------------
// Configuration value (de)serialization.  The field order mirrors the
// canonical serialization config_crc32 hashes (builder.cpp) so the two
// descriptions of "what a configuration is" cannot drift silently —
// restore re-verifies the stored checksum with config_crc32 after
// parsing.
// ---------------------------------------------------------------------------

void put_word(snap::Writer& w, Word v) {
  w.u32(static_cast<std::uint32_t>(v));
}

Word get_word(snap::Reader& r) { return static_cast<Word>(r.u32()); }

void put_config(snap::Writer& w, const Configuration& cfg) {
  w.str(cfg.name);
  w.u32(static_cast<std::uint32_t>(cfg.objects.size()));
  for (const auto& o : cfg.objects) {
    w.str(o.name);
    w.u8(static_cast<std::uint8_t>(o.kind));
    w.u8(static_cast<std::uint8_t>(o.alu.op));
    w.u32(static_cast<std::uint32_t>(o.alu.shift));
    w.b(o.alu.saturate);
    for (const Word t : o.alu.table) put_word(w, t);
    put_word(w, o.counter.start);
    put_word(w, o.counter.step);
    put_word(w, o.counter.modulo);
    w.u8(static_cast<std::uint8_t>(o.ram.mode));
    w.u32(static_cast<std::uint32_t>(o.ram.capacity));
    w.u32(static_cast<std::uint32_t>(o.ram.preload.size()));
    for (const Word v : o.ram.preload) put_word(w, v);
    w.b(o.placement.has_value());
    if (o.placement) {
      w.u32(static_cast<std::uint32_t>(o.placement->row));
      w.u32(static_cast<std::uint32_t>(o.placement->col));
    }
    w.b(o.control);
    w.u32(static_cast<std::uint32_t>(o.consts.size()));
    for (const auto& [port, value] : o.consts) {
      w.u32(static_cast<std::uint32_t>(port));
      put_word(w, value);
    }
  }
  w.u32(static_cast<std::uint32_t>(cfg.connections.size()));
  for (const auto& c : cfg.connections) {
    w.u32(static_cast<std::uint32_t>(c.src.object));
    w.u32(static_cast<std::uint32_t>(c.src.port));
    w.u32(static_cast<std::uint32_t>(c.dst.object));
    w.u32(static_cast<std::uint32_t>(c.dst.port));
    w.b(c.preload.has_value());
    if (c.preload) put_word(w, *c.preload);
  }
  w.b(cfg.checksum.has_value());
  if (cfg.checksum) w.u32(*cfg.checksum);
}

Configuration get_config(snap::Reader& r) {
  Configuration cfg;
  cfg.name = r.str();
  const std::uint32_t n_obj = r.u32();
  cfg.objects.reserve(n_obj);
  for (std::uint32_t i = 0; i < n_obj; ++i) {
    ObjectSpec o;
    o.name = r.str();
    o.kind = static_cast<ObjectKind>(r.u8());
    o.alu.op = static_cast<Opcode>(r.u8());
    o.alu.shift = static_cast<int>(r.u32());
    o.alu.saturate = r.b();
    for (Word& t : o.alu.table) t = get_word(r);
    o.counter.start = get_word(r);
    o.counter.step = get_word(r);
    o.counter.modulo = get_word(r);
    o.ram.mode = static_cast<RamMode>(r.u8());
    o.ram.capacity = static_cast<int>(r.u32());
    const std::uint32_t n_pre = r.u32();
    o.ram.preload.reserve(n_pre);
    for (std::uint32_t k = 0; k < n_pre; ++k) o.ram.preload.push_back(get_word(r));
    if (r.b()) {
      Coord at;
      at.row = static_cast<int>(r.u32());
      at.col = static_cast<int>(r.u32());
      o.placement = at;
    }
    o.control = r.b();
    const std::uint32_t n_const = r.u32();
    o.consts.reserve(n_const);
    for (std::uint32_t k = 0; k < n_const; ++k) {
      const int port = static_cast<int>(r.u32());
      o.consts.emplace_back(port, get_word(r));
    }
    cfg.objects.push_back(std::move(o));
  }
  const std::uint32_t n_conn = r.u32();
  cfg.connections.reserve(n_conn);
  for (std::uint32_t i = 0; i < n_conn; ++i) {
    ConnSpec c;
    c.src.object = static_cast<int>(r.u32());
    c.src.port = static_cast<int>(r.u32());
    c.dst.object = static_cast<int>(r.u32());
    c.dst.port = static_cast<int>(r.u32());
    if (r.b()) c.preload = get_word(r);
    cfg.connections.push_back(c);
  }
  if (r.b()) cfg.checksum = r.u32();
  return cfg;
}

void put_geometry(snap::Writer& w, const ArrayGeometry& g) {
  w.u32(static_cast<std::uint32_t>(g.rows));
  w.u32(static_cast<std::uint32_t>(g.alu_cols));
  w.u32(static_cast<std::uint32_t>(g.io_channels));
  w.u32(static_cast<std::uint32_t>(g.h_tracks_per_cell));
  w.u32(static_cast<std::uint32_t>(g.v_tracks_per_cell));
}

ArrayGeometry get_geometry(snap::Reader& r) {
  ArrayGeometry g;
  g.rows = static_cast<int>(r.u32());
  g.alu_cols = static_cast<int>(r.u32());
  g.io_channels = static_cast<int>(r.u32());
  g.h_tracks_per_cell = static_cast<int>(r.u32());
  g.v_tracks_per_cell = static_cast<int>(r.u32());
  return g;
}

bool same_geometry(const ArrayGeometry& a, const ArrayGeometry& b) {
  return a.rows == b.rows && a.alu_cols == b.alu_cols &&
         a.io_channels == b.io_channels &&
         a.h_tracks_per_cell == b.h_tracks_per_cell &&
         a.v_tracks_per_cell == b.v_tracks_per_cell;
}

void put_rng(snap::Writer& w, const Rng::State& st) {
  for (const std::uint64_t s : st.s) w.u64(s);
  w.b(st.have_spare);
  w.f64(st.spare);
}

Rng::State get_rng(snap::Reader& r) {
  Rng::State st;
  for (std::uint64_t& s : st.s) s = r.u64();
  st.have_spare = r.b();
  st.spare = r.f64();
  return st;
}

}  // namespace

// ---------------------------------------------------------------------------
// SnapshotAccess: the single friend through which save/restore reaches
// private state.  All methods are static; the class carries no state.
// ---------------------------------------------------------------------------

class SnapshotAccess {
 public:
  // -- per-object dynamic state ---------------------------------------------

  static void save_object(snap::Writer& w, const Object& o) {
    w.u8(static_cast<std::uint8_t>(o.kind_));
    w.i64(o.fired_cycle_);
    w.i64(o.fire_count_);
    switch (o.kind_) {
      case ObjectKind::kAlu: {
        const auto& a = static_cast<const AluObject&>(o);
        put_word(w, a.acc_);
        w.i64(a.cacc_re_);
        w.i64(a.cacc_im_);
        w.b(a.merge_toggle_);
        break;
      }
      case ObjectKind::kCounter: {
        const auto& c = static_cast<const CounterObject&>(o);
        put_word(w, c.value_);
        put_word(w, c.remaining_);
        break;
      }
      case ObjectKind::kRam: {
        const auto& m = static_cast<const RamObject&>(o);
        w.u32(static_cast<std::uint32_t>(m.mem_.size()));
        for (const Word v : m.mem_) put_word(w, v);
        w.u32(static_cast<std::uint32_t>(m.fifo_.size()));
        for (const Word v : m.fifo_) put_word(w, v);
        w.u64(m.replay_pos_);
        break;
      }
      case ObjectKind::kInput: {
        const auto& in = static_cast<const InputObject&>(o);
        w.u32(static_cast<std::uint32_t>(in.queue_.size()));
        for (const Word v : in.queue_) put_word(w, v);
        break;
      }
      case ObjectKind::kOutput: {
        const auto& out = static_cast<const OutputObject&>(o);
        w.u32(static_cast<std::uint32_t>(out.data_.size()));
        for (const Word v : out.data_) put_word(w, v);
        break;
      }
    }
  }

  static void restore_object(snap::Reader& r, Object& o) {
    const auto kind = static_cast<ObjectKind>(r.u8());
    if (kind != o.kind_) {
      throw SnapshotError("snapshot: object '" + o.name_ +
                          "' kind mismatch (payload says " +
                          object_kind_name(kind) + ", instantiated " +
                          object_kind_name(o.kind_) + ")");
    }
    o.fired_cycle_ = r.i64();
    o.fire_count_ = r.i64();
    switch (kind) {
      case ObjectKind::kAlu: {
        auto& a = static_cast<AluObject&>(o);
        a.acc_ = get_word(r);
        a.cacc_re_ = r.i64();
        a.cacc_im_ = r.i64();
        a.merge_toggle_ = r.b();
        break;
      }
      case ObjectKind::kCounter: {
        auto& c = static_cast<CounterObject&>(o);
        c.value_ = get_word(r);
        c.remaining_ = get_word(r);
        break;
      }
      case ObjectKind::kRam: {
        auto& m = static_cast<RamObject&>(o);
        const std::uint32_t n_mem = r.u32();
        m.mem_.assign(n_mem, 0);
        for (std::uint32_t i = 0; i < n_mem; ++i) m.mem_[i] = get_word(r);
        const std::uint32_t n_fifo = r.u32();
        m.fifo_.clear();
        for (std::uint32_t i = 0; i < n_fifo; ++i) m.fifo_.push_back(get_word(r));
        m.replay_pos_ = r.u64();
        break;
      }
      case ObjectKind::kInput: {
        auto& in = static_cast<InputObject&>(o);
        const std::uint32_t n = r.u32();
        in.queue_.clear();
        for (std::uint32_t i = 0; i < n; ++i) in.queue_.push_back(get_word(r));
        break;
      }
      case ObjectKind::kOutput: {
        auto& out = static_cast<OutputObject&>(o);
        const std::uint32_t n = r.u32();
        out.data_.assign(n, 0);
        for (std::uint32_t i = 0; i < n; ++i) out.data_[i] = get_word(r);
        break;
      }
    }
  }

  // -- per-net dynamic state ------------------------------------------------

  static void save_net(snap::Writer& w, const Net& n) {
    w.u32(static_cast<std::uint32_t>(n.num_sinks_));
    w.b(n.has_value_);
    put_word(w, n.value_);
    w.u32(n.consumed_mask_);
    w.b(n.staged_.has_value());
    put_word(w, n.staged_.value_or(0));
    w.u64(n.generation_);
  }

  static void restore_net(snap::Reader& r, Net& n) {
    const int sinks = static_cast<int>(r.u32());
    if (sinks != n.num_sinks_) {
      throw SnapshotError(
          "snapshot: net fan-out mismatch (payload says " +
          std::to_string(sinks) + " sink(s), instantiated " +
          std::to_string(n.num_sinks_) + ") — configuration drift");
    }
    n.has_value_ = r.b();
    n.value_ = get_word(r);
    n.consumed_mask_ = r.u32();
    const bool staged = r.b();
    const Word staged_v = get_word(r);
    if (staged) {
      n.staged_ = staged_v;
    } else {
      n.staged_.reset();
    }
    n.generation_ = r.u64();
  }

  // -- whole-manager save ---------------------------------------------------

  static void save(snap::Writer& w, const ConfigurationManager& mgr,
                   const FaultInjector* injector) {
    const Simulator& sim = mgr.sim_;
    if (sim.groups_.size() != mgr.loaded_.size()) {
      throw SnapshotError(
          "snapshot: simulator carries groups not loaded through the "
          "ConfigurationManager — only manager-loaded state is snapshottable");
    }
    if (!mgr.parked_.empty()) {
      throw SnapshotError(
          "snapshot: parked configurations present — a parked entry holds "
          "placement claims with no live array state; acquire or release "
          "the pool before saving");
    }

    put_geometry(w, mgr.resources_.geom_);
    w.u8(static_cast<std::uint8_t>(sim.kind_));
    w.i64(sim.cycle_);
    w.u32(static_cast<std::uint32_t>(mgr.loaded_.size()));
    w.b(injector != nullptr);

    // Per-configuration: the Configuration value, the bookkeeping, then
    // the dynamic state of every object and net of its group (group
    // content order is deterministic: instantiate_config order).
    for (const auto& [id, lc] : mgr.loaded_) {
      const auto cit = mgr.configs_.find(id);
      if (cit == mgr.configs_.end()) {
        throw SnapshotError("snapshot: no stored Configuration for id " +
                            std::to_string(id));
      }
      w.u32(static_cast<std::uint32_t>(id));
      put_config(w, cit->second);
      w.u32(static_cast<std::uint32_t>(lc.group));
      w.u32(static_cast<std::uint32_t>(lc.alu_cells));
      w.u32(static_cast<std::uint32_t>(lc.ram_cells));
      w.u32(static_cast<std::uint32_t>(lc.io_channels));
      w.u32(static_cast<std::uint32_t>(lc.routing_segments));
      w.i64(lc.load_cycles);
      w.i64(lc.loaded_at_cycle);

      const auto git = sim.groups_.find(lc.group);
      if (git == sim.groups_.end()) {
        throw SnapshotError("snapshot: loaded config " + std::to_string(id) +
                            " has no simulator group");
      }
      const Simulator::Group& g = git->second;
      w.u32(static_cast<std::uint32_t>(g.objects.size()));
      for (const auto& o : g.objects) save_object(w, *o);
      w.u32(static_cast<std::uint32_t>(g.nets.size()));
      for (const auto& n : g.nets) save_net(w, *n);
    }

    // Simulator / manager counters.
    w.i64(sim.total_fires_);
    w.u32(static_cast<std::uint32_t>(sim.next_id_));
    w.u32(static_cast<std::uint32_t>(mgr.next_id_));
    w.i64(mgr.total_config_cycles_);

    // ResourceMap raw occupancy (see the friend note in array.hpp).
    const ResourceMap& res = mgr.resources_;
    w.u32(static_cast<std::uint32_t>(res.cell_owner_.size()));
    for (const ConfigId c : res.cell_owner_) w.u32(static_cast<std::uint32_t>(c));
    w.u32(static_cast<std::uint32_t>(res.io_owner_.size()));
    for (const ConfigId c : res.io_owner_) w.u32(static_cast<std::uint32_t>(c));
    w.u32(static_cast<std::uint32_t>(res.h_used_.size()));
    for (const int v : res.h_used_) w.u32(static_cast<std::uint32_t>(v));
    w.u32(static_cast<std::uint32_t>(res.v_used_.size()));
    for (const int v : res.v_used_) w.u32(static_cast<std::uint32_t>(v));
    w.u32(static_cast<std::uint32_t>(res.peak_alu_));
    w.u32(static_cast<std::uint32_t>(res.peak_ram_));
    w.u32(static_cast<std::uint32_t>(res.segments_.size()));
    for (const auto& s : res.segments_) {
      w.u32(static_cast<std::uint32_t>(s.cell));
      w.b(s.horizontal);
      w.u32(static_cast<std::uint32_t>(s.owner));
    }

    if (injector != nullptr) save_injector(w, sim, *injector);
  }

  static void save_injector(snap::Writer& w, const Simulator& sim,
                            const FaultInjector& inj) {
    w.u32(static_cast<std::uint32_t>(inj.plan_.faults.size()));
    for (const Fault& f : inj.plan_.faults) {
      w.u8(static_cast<std::uint8_t>(f.kind));
      w.i64(f.cycle);
      w.str(f.object);
      w.u32(static_cast<std::uint32_t>(f.group));
      w.u32(static_cast<std::uint32_t>(f.port));
      w.u32(static_cast<std::uint32_t>(f.bit));
      w.i64(f.duration);
      w.u32(static_cast<std::uint32_t>(f.addr));
      put_word(w, f.mask);
    }
    w.f64(inj.plan_.seu.per_cycle_prob);
    w.u64(inj.plan_.seu.seed);
    w.i64(inj.plan_.seu.from);
    w.i64(inj.plan_.seu.to);
    w.u64(inj.next_fault_);
    // Stuck windows hold raw Object pointers: persist them as
    // (group id, object name) and re-resolve on restore.
    w.u32(static_cast<std::uint32_t>(inj.stuck_.size()));
    for (const auto& s : inj.stuck_) {
      int group = -1;
      std::string name;
      for (const auto& [gid, g] : sim.groups_) {
        for (const auto& o : g.objects) {
          if (o.get() == s.object) {
            group = gid;
            name = o->name();
            break;
          }
        }
        if (group >= 0) break;
      }
      if (group < 0) {
        throw SnapshotError(
            "snapshot: stuck-window target is not resident on the array");
      }
      w.u32(static_cast<std::uint32_t>(group));
      w.str(name);
      w.i64(s.until);
    }
    w.b(inj.wake_pending_);
    w.b(inj.armed_);
    put_rng(w, inj.rng_.state());
    w.u32(static_cast<std::uint32_t>(inj.log_.size()));
    for (const FaultEvent& ev : inj.log_) {
      w.i64(ev.cycle);
      w.u8(static_cast<std::uint8_t>(ev.kind));
      w.str(ev.target);
      w.u32(static_cast<std::uint32_t>(ev.detail));
      w.b(ev.hit);
    }
  }

  // -- whole-manager restore ------------------------------------------------

  static SnapshotInfo read_header(snap::Reader& r) {
    SnapshotInfo info;
    info.version = kSnapshotVersion;
    info.geometry = get_geometry(r);
    info.scheduler = static_cast<SchedulerKind>(r.u8());
    info.cycle = r.i64();
    info.configs = r.u32();
    info.has_fault_state = r.b();
    return info;
  }

  static void restore(ConfigurationManager& mgr, snap::Reader& r,
                      FaultInjector* injector) {
    const SnapshotInfo info = read_header(r);
    Simulator& sim = mgr.sim_;

    if (!same_geometry(info.geometry, mgr.resources_.geom_)) {
      throw SnapshotError(
          "snapshot: array geometry mismatch — construct the target manager "
          "with the snapshot's geometry (peek_snapshot)");
    }
    if (info.scheduler != sim.kind_) {
      throw SnapshotError(
          "snapshot: scheduler kind mismatch — construct the target manager "
          "with the snapshot's SchedulerKind (peek_snapshot)");
    }
    if (sim.cycle_ != 0 || !sim.groups_.empty() || !mgr.loaded_.empty()) {
      throw SnapshotError(
          "snapshot: restore target must be freshly constructed (cycle 0, "
          "nothing loaded)");
    }
    if (info.has_fault_state && injector == nullptr) {
      throw SnapshotError(
          "snapshot: payload carries fault-injector state; pass a "
          "FaultInjector to restore into");
    }

    for (std::uint32_t i = 0; i < info.configs; ++i) {
      const ConfigId id = static_cast<ConfigId>(r.u32());
      Configuration cfg = get_config(r);
      // The configuration's own canonical CRC guards against semantic
      // drift the frame CRC cannot see (a stale snapshot of a config
      // whose builder changed meaning).
      if (cfg.checksum) {
        const std::uint32_t got = config_crc32(cfg);
        if (got != *cfg.checksum) {
          throw SnapshotError("snapshot: config '" + cfg.name +
                              "' checksum mismatch after parse (stored " +
                              std::to_string(*cfg.checksum) + ", computed " +
                              std::to_string(got) + ")");
        }
      }
      LoadedConfig lc;
      lc.name = cfg.name;
      lc.group = static_cast<Simulator::GroupId>(r.u32());
      lc.alu_cells = static_cast<int>(r.u32());
      lc.ram_cells = static_cast<int>(r.u32());
      lc.io_channels = static_cast<int>(r.u32());
      lc.routing_segments = static_cast<int>(r.u32());
      lc.load_cycles = r.i64();
      lc.loaded_at_cycle = r.i64();

      std::vector<std::unique_ptr<Object>> objects;
      std::vector<std::unique_ptr<Net>> nets;
      detail::instantiate_config(cfg, objects, nets);

      const std::uint32_t n_obj = r.u32();
      if (n_obj != objects.size()) {
        throw SnapshotError("snapshot: config '" + cfg.name +
                            "' object count mismatch");
      }
      for (auto& o : objects) restore_object(r, *o);
      const std::uint32_t n_net = r.u32();
      if (n_net != nets.size()) {
        throw SnapshotError("snapshot: config '" + cfg.name +
                            "' net count mismatch");
      }
      for (auto& n : nets) restore_net(r, *n);

      install_group(sim, lc.group, std::move(objects), std::move(nets));
      mgr.loaded_.emplace(id, lc);
      mgr.configs_.emplace(id, std::move(cfg));
    }

    sim.cycle_ = info.cycle;
    sim.total_fires_ = r.i64();
    sim.next_id_ = static_cast<Simulator::GroupId>(r.u32());
    mgr.next_id_ = static_cast<ConfigId>(r.u32());
    mgr.total_config_cycles_ = r.i64();

    restore_resources(mgr.resources_, r);

    if (info.has_fault_state) restore_injector(sim, r, *injector);
    if (!r.done()) {
      throw SnapshotError("snapshot: " + std::to_string(r.remaining()) +
                          " trailing byte(s) after payload");
    }
    if (info.has_fault_state) sim.install_faults(injector);
  }

  /// Insert a restored group at its original GroupId, mirroring
  /// add_group (name index, scheduler attachment, full enqueue) — minus
  /// id allocation, minus the compiled-engine invalidate (the engine is
  /// fresh).  Enqueuing every object plus re-marking every
  /// commit-pending net dirty conservatively reseeds the event
  /// scheduler; see the restore contract in snapshot.hpp.
  static void install_group(Simulator& sim, Simulator::GroupId gid,
                            std::vector<std::unique_ptr<Object>> objects,
                            std::vector<std::unique_ptr<Net>> nets) {
    auto [it, inserted] = sim.groups_.emplace(
        gid, Simulator::Group{std::move(objects), std::move(nets), {}});
    if (!inserted) {
      throw SnapshotError("snapshot: duplicate group id " +
                          std::to_string(gid) + " in payload");
    }
    Simulator::Group& g = it->second;
    g.by_name.reserve(g.objects.size());
    for (auto& o : g.objects) {
      g.by_name.emplace(o->name(), o.get());
      if (sim.kind_ != SchedulerKind::kScan) {
        o->attach_scheduler(&sim);
        sim.enqueue_next(o.get());
      }
    }
    if (sim.kind_ != SchedulerKind::kScan) {
      for (auto& n : g.nets) {
        if (n->commit_pending() && n->mark_dirty()) {
          sim.dirty_nets_.push_back(n.get());
        }
      }
    }
    sim.group_cache_.clear();
    for (auto& [id, grp] : sim.groups_) {
      (void)id;
      sim.group_cache_.push_back(&grp);
    }
  }

  static void restore_resources(ResourceMap& res, snap::Reader& r) {
    const auto read_ids = [&r](std::vector<ConfigId>& v,
                               const char* what) {
      const std::uint32_t n = r.u32();
      if (n != v.size()) {
        throw SnapshotError(std::string("snapshot: ResourceMap ") + what +
                            " size mismatch");
      }
      for (auto& c : v) c = static_cast<ConfigId>(r.u32());
    };
    const auto read_ints = [&r](std::vector<int>& v, const char* what) {
      const std::uint32_t n = r.u32();
      if (n != v.size()) {
        throw SnapshotError(std::string("snapshot: ResourceMap ") + what +
                            " size mismatch");
      }
      for (auto& x : v) x = static_cast<int>(r.u32());
    };
    read_ids(res.cell_owner_, "cell_owner");
    read_ids(res.io_owner_, "io_owner");
    read_ints(res.h_used_, "h_used");
    read_ints(res.v_used_, "v_used");
    res.peak_alu_ = static_cast<int>(r.u32());
    res.peak_ram_ = static_cast<int>(r.u32());
    const std::uint32_t n_seg = r.u32();
    res.segments_.clear();
    res.segments_.reserve(n_seg);
    for (std::uint32_t i = 0; i < n_seg; ++i) {
      ResourceMap::Segment s;
      s.cell = static_cast<int>(r.u32());
      s.horizontal = r.b();
      s.owner = static_cast<ConfigId>(r.u32());
      res.segments_.push_back(s);
    }
  }

  static void restore_injector(Simulator& sim, snap::Reader& r,
                               FaultInjector& inj) {
    FaultPlan plan;
    const std::uint32_t n_faults = r.u32();
    plan.faults.reserve(n_faults);
    for (std::uint32_t i = 0; i < n_faults; ++i) {
      Fault f;
      f.kind = static_cast<FaultKind>(r.u8());
      f.cycle = r.i64();
      f.object = r.str();
      f.group = static_cast<int>(r.u32());
      f.port = static_cast<int>(r.u32());
      f.bit = static_cast<int>(r.u32());
      f.duration = r.i64();
      f.addr = static_cast<int>(r.u32());
      f.mask = get_word(r);
      plan.faults.push_back(std::move(f));
    }
    plan.seu.per_cycle_prob = r.f64();
    plan.seu.seed = r.u64();
    plan.seu.from = r.i64();
    plan.seu.to = r.i64();
    // The plan was saved post-sort; assign directly (install() would
    // re-sort stably, a no-op, but also clear the cursor and log).
    inj.plan_ = std::move(plan);
    inj.next_fault_ = r.u64();
    const std::uint32_t n_stuck = r.u32();
    inj.stuck_.clear();
    inj.stuck_.reserve(n_stuck);
    for (std::uint32_t i = 0; i < n_stuck; ++i) {
      const int group = static_cast<int>(r.u32());
      const std::string name = r.str();
      const long long until = r.i64();
      Object* o = sim.find(group, name);
      if (o == nullptr) {
        throw SnapshotError("snapshot: stuck-window target '" + name +
                            "' not found in restored group " +
                            std::to_string(group));
      }
      inj.stuck_.push_back({o, until});
    }
    inj.wake_pending_ = r.b();
    inj.armed_ = r.b();
    inj.rng_.set_state(get_rng(r));
    const std::uint32_t n_log = r.u32();
    inj.log_.clear();
    inj.log_.reserve(n_log);
    for (std::uint32_t i = 0; i < n_log; ++i) {
      FaultEvent ev;
      ev.cycle = r.i64();
      ev.kind = static_cast<FaultKind>(r.u8());
      ev.target = r.str();
      ev.detail = static_cast<int>(r.u32());
      ev.hit = r.b();
      inj.log_.push_back(std::move(ev));
    }
  }
};

// ---------------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------------

std::string save_snapshot(const ConfigurationManager& mgr,
                          const FaultInjector* injector) {
  // Deoptimize any live epoch so the nets hold the authoritative state.
  // Logically const: deoptimization restores the exact interpreter
  // state replay maintained (same contract as Simulator::diagnose).
  if (CompiledEngine* eng = mgr.sim().compiled_engine()) eng->deoptimize();
  snap::Writer w;
  SnapshotAccess::save(w, mgr, injector);
  return snap::frame(kSnapshotMagic, kSnapshotVersion, w.bytes());
}

SnapshotInfo peek_snapshot(const std::string& bytes) {
  snap::Reader r(snap::unframe(kSnapshotMagic, kSnapshotVersion, bytes));
  return SnapshotAccess::read_header(r);
}

void restore_snapshot(ConfigurationManager& mgr, const std::string& bytes,
                      FaultInjector* injector) {
  snap::Reader r(snap::unframe(kSnapshotMagic, kSnapshotVersion, bytes));
  SnapshotAccess::restore(mgr, r, injector);
}

std::unique_ptr<ConfigurationManager> restore_snapshot_new(
    const std::string& bytes, FaultInjector* injector) {
  const SnapshotInfo info = peek_snapshot(bytes);
  auto mgr =
      std::make_unique<ConfigurationManager>(info.geometry, info.scheduler);
  restore_snapshot(*mgr, bytes, injector);
  return mgr;
}

void save_snapshot_file(const std::string& path,
                        const ConfigurationManager& mgr,
                        const FaultInjector* injector) {
  snap::write_file_atomic(path, save_snapshot(mgr, injector));
}

std::unique_ptr<ConfigurationManager> restore_snapshot_file(
    const std::string& path, FaultInjector* injector) {
  return restore_snapshot_new(snap::read_file(path), injector);
}

}  // namespace rsp::xpp

// Deterministic fault injection for the XPP runtime.
//
// The paper's always-on-terminal claim (Fig. 10: a resident
// configuration keeps running while others load and swap) is only worth
// anything if the runtime survives things going wrong.  This layer
// injects the physical failure modes a fielded terminal sees —
// single-event upsets on the 24-bit datapath, PAEs that stop firing,
// RAM-PAE word corruption, dropped/duplicated tokens at the I/O
// channels — as *deterministic, replayable* events:
//
//  - Faults strike at cycle boundaries (after the commit phase of cycle
//    c-1, before any object of cycle c fires).  Both schedulers reach
//    the identical net/object state at every boundary, so kScan and
//    kEventDriven observe bit-identical fault streams under the same
//    FaultPlan (differentially tested in tests/xpp/test_fault.cpp).
//  - Random SEU processes draw from a seeded Rng exactly once per cycle
//    while armed, so a run replays bit-identically for a given seed.
//  - With no injector installed the Simulator pays one pointer compare
//    per cycle — nothing per object, nothing per net (bench_fault
//    guards the <= 2% envelope).
//
// The injector reports every mutation through the Simulator's
// SchedulerHooks surface so the event-driven worklist re-examines
// exactly the objects whose readiness a fault may have changed; the
// scan scheduler needs no notification (it rescans everything).
#pragma once

#include <climits>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/xpp/types.hpp"

namespace rsp::xpp {

class Simulator;
class Object;
class Net;

/// Physical failure modes modelled on the array.
enum class FaultKind : std::uint8_t {
  kNetBitFlip,   ///< SEU: flip one bit of the token resident on a net
  kStuckObject,  ///< PAE stops firing for a window (or permanently)
  kRamCorrupt,   ///< XOR a word of a RAM-PAE's backing store
  kDropToken,    ///< input channel loses the front queued word
  kDupToken,     ///< input channel duplicates the front queued word
};

[[nodiscard]] const char* fault_kind_name(FaultKind k);

/// Marks a stuck-at fault as permanent.
inline constexpr long long kStuckForever = LLONG_MAX;

/// One scheduled fault.  Targets are named: @p object is the object's
/// name; net faults address the net driven by its output @p port.
/// @p group restricts the lookup to one simulator group (-1: first
/// match across groups in load order).
struct Fault {
  FaultKind kind = FaultKind::kNetBitFlip;
  long long cycle = 0;      ///< strikes at the start of this cycle
  std::string object;       ///< target object name
  int group = -1;           ///< Simulator group id (-1: any)
  int port = 0;             ///< output port selecting the net (kNetBitFlip)
  int bit = 0;              ///< bit to flip, 0..23 (kNetBitFlip)
  long long duration = kStuckForever;  ///< stuck window length in cycles
  int addr = 0;             ///< word address (kRamCorrupt)
  Word mask = 1;            ///< XOR mask (kRamCorrupt)
};

/// Poisson-like random SEU process: while cycle is in [from, to), each
/// cycle flips one random bit of one random net with probability
/// @p per_cycle_prob.  Nets are enumerated in load order, so two runs
/// with the same seed and load sequence replay identically.
struct SeuProcess {
  double per_cycle_prob = 0.0;  ///< 0 disables the process
  std::uint64_t seed = 1;
  long long from = 0;
  long long to = kStuckForever;
};

/// Everything the injector will do to one run.
struct FaultPlan {
  std::vector<Fault> faults;
  SeuProcess seu;

  [[nodiscard]] bool empty() const {
    return faults.empty() && seu.per_cycle_prob <= 0.0;
  }
};

/// Record of one injection attempt.  @p hit is false when the fault
/// found no target (unknown object name, empty net, empty queue) — an
/// SEU striking unoccupied routing is harmless and logged as a miss.
struct FaultEvent {
  long long cycle = 0;
  FaultKind kind = FaultKind::kNetBitFlip;
  std::string target;  ///< resolved "object" or "object.out<port>" name
  int detail = 0;      ///< bit index / address / queue length context
  bool hit = false;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Executes a FaultPlan against a Simulator.  Install with
/// Simulator::install_faults(&injector); the simulator calls back once
/// per cycle boundary.  One injector drives one simulator at a time.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultPlan plan) { install(std::move(plan)); }

  /// Replace the plan (faults are sorted by strike cycle; the log and
  /// all in-flight stuck windows are cleared).
  void install(FaultPlan plan);

  /// Injection history, in strike order.
  [[nodiscard]] const std::vector<FaultEvent>& log() const { return log_; }

  /// True while scheduled faults (strikes or stuck-window expiries) are
  /// still outstanding.  run_until_quiescent keeps stepping through
  /// zero-fire cycles while this holds, so a pipeline stalled behind a
  /// finite stuck-at window resumes instead of reporting a deadlock.
  [[nodiscard]] bool events_pending() const;

  /// True while the injector can still act on some future boundary:
  /// unapplied faults, an armed SEU process, live stuck windows, or a
  /// just-expired window's wake.  Inline so Simulator::step can skip
  /// the out-of-line on_cycle call — an installed injector whose plan
  /// is empty (or exhausted) costs one predictable branch per cycle.
  [[nodiscard]] bool armed() const { return armed_; }

  /// Cycle-boundary callback (invoked by Simulator::step; sim.cycle()
  /// is the cycle about to execute).
  void on_cycle(Simulator& sim);

 private:
  /// Snapshot save/restore (snapshot.hpp): the plan cursor, live stuck
  /// windows (persisted as group+name, re-resolved on restore), the SEU
  /// RNG state and the log are all captured so a snapshot taken inside
  /// an armed fault window resumes the identical fault stream.
  friend class SnapshotAccess;

  struct StuckWindow {
    Object* object = nullptr;
    long long until = kStuckForever;  ///< first cycle firing resumes
  };

  void strike(Simulator& sim, const Fault& f);
  void random_seu(Simulator& sim, long long cycle);

  /// Resolve @p name within @p group (-1: all groups, ascending id —
  /// the load order, which both schedulers share).
  static Object* find_target(Simulator& sim, const std::string& name,
                             int group);

  FaultPlan plan_;
  std::size_t next_fault_ = 0;  ///< first unapplied entry of plan_.faults
  std::vector<StuckWindow> stuck_;
  bool wake_pending_ = false;  ///< a window expired at the last boundary
  bool armed_ = false;         ///< cached: any future boundary needs us
  Rng rng_;
  std::vector<FaultEvent> log_;
};

}  // namespace rsp::xpp

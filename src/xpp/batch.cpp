// Batched cross-instance SIMD replay: canonical program images, the
// shared program cache, and the lockstep lane engine.
//
// Execution-order transform only: a batch tick performs exactly the
// mutations of CompiledProgram::exec_phase for each lane — guards
// first (no mutation before a deopt), then the op list (SIMD kernels
// for the vector-friendly kinds, per-lane loops for the stateful
// RAM / FIFO / LUT / IO kinds, which touch each lane's own objects),
// then the latch list.  Merge toggles and fire/latch accounting are
// deferred to scatter time, where closed-form per-phase counts
// reproduce the scalar bookkeeping exactly.
#include "src/xpp/batch.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <unordered_map>

#include "src/common/fnv.hpp"
#include "src/xpp/alu.hpp"
#include "src/xpp/counter.hpp"
#include "src/xpp/fault.hpp"
#include "src/xpp/io.hpp"
#include "src/xpp/ram.hpp"
#include "src/xpp/sim.hpp"

namespace rsp::xpp {

// ---------------------------------------------------------------------------
// CanonicalProgram
// ---------------------------------------------------------------------------

struct CanonicalProgram::Enumeration {
  std::vector<Object*> objs;
  std::vector<Net*> nets;
  std::unordered_map<const void*, std::int32_t> obj_idx;
  std::unordered_map<const void*, std::int32_t> net_idx;

  void index() {
    obj_idx.reserve(objs.size());
    net_idx.reserve(nets.size());
    for (std::size_t i = 0; i < objs.size(); ++i) {
      obj_idx.emplace(objs[i], static_cast<std::int32_t>(i));
    }
    for (std::size_t i = 0; i < nets.size(); ++i) {
      net_idx.emplace(nets[i], static_cast<std::int32_t>(i));
    }
  }

  /// The same group-ascending traversal as CompiledProgram::Builder::
  /// enumerate, so indices line up with a program built on @p sim.
  static Enumeration of(const Simulator& sim) {
    Enumeration e;
    for (const auto& [gid, g] : sim.groups_) {
      (void)gid;
      for (const auto& o : g.objects) e.objs.push_back(o.get());
      for (const auto& n : g.nets) e.nets.push_back(n.get());
    }
    e.index();
    return e;
  }
};

namespace {

/// Serialize everything execution depends on — object kinds and
/// parameters, port wiring (with sink indices and shadowing
/// constants), net fan-out — by enumeration index.  Names and
/// addresses are deliberately absent: two terminals built from the
/// same configuration serialize identically.
std::vector<std::int64_t> serialize_shape(
    const CanonicalProgram::Enumeration& en) {
  std::vector<std::int64_t> s;
  s.reserve(en.objs.size() * 16 + en.nets.size() + 2);
  s.push_back(static_cast<std::int64_t>(en.objs.size()));
  s.push_back(static_cast<std::int64_t>(en.nets.size()));
  for (Object* o : en.objs) {
    s.push_back(static_cast<std::int64_t>(o->kind()));
    switch (o->kind()) {
      case ObjectKind::kAlu: {
        const AluParams& p = static_cast<AluObject*>(o)->params();
        s.push_back(static_cast<std::int64_t>(p.op));
        s.push_back(p.shift);
        s.push_back(p.saturate ? 1 : 0);
        for (Word w : p.table) s.push_back(w);
        break;
      }
      case ObjectKind::kCounter: {
        const CounterParams& p = static_cast<CounterObject*>(o)->params();
        s.push_back(p.start);
        s.push_back(p.step);
        s.push_back(p.modulo);
        break;
      }
      case ObjectKind::kRam: {
        const RamParams& p = static_cast<RamObject*>(o)->params();
        s.push_back(static_cast<std::int64_t>(p.mode));
        s.push_back(p.capacity);
        s.push_back(static_cast<std::int64_t>(p.preload.size()));
        for (Word w : p.preload) s.push_back(w);
        break;
      }
      case ObjectKind::kInput:
      case ObjectKind::kOutput:
        break;
    }
    for (int i = 0; i < kMaxIn; ++i) {
      const auto c = o->in_const(i);
      s.push_back(c.has_value() ? 1 : 0);
      s.push_back(c.value_or(0));
      const Net* n = o->in_net(i);
      const auto it = n != nullptr ? en.net_idx.find(n) : en.net_idx.end();
      s.push_back(it != en.net_idx.end() ? it->second : -1);
      s.push_back(n != nullptr ? o->in_sink(i) : -1);
    }
    for (int j = 0; j < kMaxOut; ++j) {
      const Net* n = o->out_net(j);
      const auto it = n != nullptr ? en.net_idx.find(n) : en.net_idx.end();
      s.push_back(it != en.net_idx.end() ? it->second : -1);
    }
  }
  for (const Net* n : en.nets) s.push_back(n->num_sinks());
  return s;
}

std::uint64_t hash_shape(const std::vector<std::int64_t>& s) {
  Fnv1a f;
  for (std::int64_t v : s) f.mix(static_cast<std::uint64_t>(v));
  return f.value();
}

/// (shape, period, minimal rotation of the phase hashes) -> signature.
/// Rotation-invariance matters: two terminals detect the same steady
/// state at arbitrary phase offsets of each other.
std::uint64_t signature_of(std::uint64_t shape_hash,
                           const std::vector<std::uint64_t>& ph) {
  const int p = static_cast<int>(ph.size());
  int best = 0;
  for (int r = 1; r < p; ++r) {
    for (int i = 0; i < p; ++i) {
      const std::uint64_t x = ph[static_cast<std::size_t>((r + i) % p)];
      const std::uint64_t y = ph[static_cast<std::size_t>((best + i) % p)];
      if (x != y) {
        if (x < y) best = r;
        break;
      }
    }
  }
  Fnv1a f;
  f.mix(shape_hash);
  f.mix(static_cast<std::uint64_t>(p));
  for (int i = 0; i < p; ++i) {
    f.mix(ph[static_cast<std::size_t>((best + i) % p)]);
  }
  // 0 means "unstamped" everywhere else; remap the (vanishingly rare)
  // genuine zero.
  return f.value() != 0 ? f.value() : 1;
}

}  // namespace

std::shared_ptr<const CanonicalProgram> CanonicalProgram::capture(
    const Simulator& sim, const CompiledProgram& pr) {
  (void)sim;  // the program's own enumeration vectors are authoritative
  std::shared_ptr<CanonicalProgram> cp(new CanonicalProgram());
  Enumeration en;
  en.objs = pr.objs_;
  en.nets = pr.nets_;
  en.index();

  cp->shape_ = serialize_shape(en);

  const auto obj_of = [&en](const void* p) {
    const auto it = en.obj_idx.find(p);
    return it != en.obj_idx.end() ? it->second : std::int32_t{-1};
  };
  cp->op_obj_.reserve(pr.ops_.size());
  for (const auto& op : pr.ops_) {
    const std::int32_t i = obj_of(op.obj);
    if (i < 0) return nullptr;
    cp->op_obj_.push_back(i);
  }
  cp->guard_in_.reserve(pr.guards_.size());
  for (const auto& g : pr.guards_) {
    if (g.input == nullptr) {
      cp->guard_in_.push_back(-1);
      continue;
    }
    const std::int32_t i = obj_of(g.input);
    if (i < 0) return nullptr;
    cp->guard_in_.push_back(i);
  }
  const auto index_all = [&obj_of](const auto& src,
                                   std::vector<std::int32_t>* dst) {
    dst->reserve(src.size());
    for (const auto* o : src) {
      const std::int32_t i = obj_of(o);
      if (i < 0) return false;
      dst->push_back(i);
    }
    return true;
  };
  if (!index_all(pr.fifos_, &cp->fifo_idx_) ||
      !index_all(pr.merges_, &cp->merge_idx_) ||
      !index_all(pr.nonfiring_inputs_, &cp->nonfiring_idx_) ||
      !index_all(pr.req_nonempty_inputs_, &cp->req_nonempty_idx_)) {
    return nullptr;
  }

  const int p = pr.period_;
  cp->phases_.resize(static_cast<std::size_t>(p));
  cp->phase_hash_.resize(static_cast<std::size_t>(p));
  for (int k = 0; k < p; ++k) {
    auto& out = cp->phases_[static_cast<std::size_t>(k)];
    const auto& evs = pr.records_[static_cast<std::size_t>(k)].evs;
    out.reserve(evs.size());
    Fnv1a f;
    for (const CycleEvent& ev : evs) {
      CanonEv ce;
      ce.kind = static_cast<std::uint8_t>(ev.kind);
      ce.sink = ev.sink;
      if (ev.kind == CycleEvent::Kind::kFire) {
        ce.is_net = 0;
        ce.idx = obj_of(ev.ptr);
      } else {
        ce.is_net = 1;
        const auto it = en.net_idx.find(ev.ptr);
        ce.idx = it != en.net_idx.end() ? it->second : -1;
      }
      if (ce.idx < 0) return nullptr;
      f.mix(ce.kind);
      f.mix(ce.is_net);
      f.mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(ce.idx)));
      f.mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(ce.sink)));
      out.push_back(ce);
    }
    f.mix(out.size() + 1);
    cp->phase_hash_[static_cast<std::size_t>(k)] = f.value();
  }

  cp->sig_ = signature_of(hash_shape(cp->shape_), cp->phase_hash_);

  // Template: copy the POD program, scrub everything pointer-valued or
  // armed-state so a stale source simulator can never be dereferenced
  // through the shared image.
  cp->tpl_ = pr;
  cp->tpl_.nets_.assign(pr.nets_.size(), nullptr);
  cp->tpl_.objs_.assign(pr.objs_.size(), nullptr);
  cp->tpl_.records_.clear();
  for (auto& op : cp->tpl_.ops_) op.obj = nullptr;
  for (auto& g : cp->tpl_.guards_) g.input = nullptr;
  std::fill(cp->tpl_.fifos_.begin(), cp->tpl_.fifos_.end(), nullptr);
  std::fill(cp->tpl_.merges_.begin(), cp->tpl_.merges_.end(), nullptr);
  std::fill(cp->tpl_.nonfiring_inputs_.begin(),
            cp->tpl_.nonfiring_inputs_.end(), nullptr);
  std::fill(cp->tpl_.req_nonempty_inputs_.begin(),
            cp->tpl_.req_nonempty_inputs_.end(), nullptr);
  cp->tpl_.value_.clear();
  cp->tpl_.staged_.clear();
  cp->tpl_.latch_accum_.clear();
  cp->tpl_.pos_ = 0;
  cp->tpl_.tpae_.clear();
  cp->tpl_.tnete_.clear();
  cp->tpl_.trow_.clear();
  cp->tpl_.canonical_sig_ = cp->sig_;
  return cp;
}

/// Memoized graph-shape half of window_signature: the enumeration and
/// the structural hash depend only on the live object graph, which is
/// invariant between add_group/remove_group (CompiledEngine clears its
/// memo in invalidate()).  Without this, every post-cooldown candidate
/// would re-walk the whole graph — a per-candidate cost the scalar
/// baseline never pays.
struct ShapeMemo {
  CanonicalProgram::Enumeration en;
  std::uint64_t shape_hash = 0;
};

std::uint64_t CanonicalProgram::window_signature(
    const Simulator& sim, const std::vector<const CycleRecord*>& period,
    std::shared_ptr<const void>* memo) {
  if (period.empty()) return 0;
  std::shared_ptr<const ShapeMemo> sm;
  if (memo != nullptr && *memo != nullptr) {
    sm = std::static_pointer_cast<const ShapeMemo>(*memo);
  } else {
    auto fresh = std::make_shared<ShapeMemo>();
    fresh->en = Enumeration::of(sim);
    if (!fresh->en.objs.empty()) {
      fresh->shape_hash = hash_shape(serialize_shape(fresh->en));
    }
    sm = std::move(fresh);
    if (memo != nullptr) *memo = sm;
  }
  const Enumeration& en = sm->en;
  if (en.objs.empty()) return 0;
  std::vector<std::uint64_t> ph(period.size());
  for (std::size_t k = 0; k < period.size(); ++k) {
    Fnv1a f;
    std::size_t cnt = 0;
    for (const CycleEvent& ev : period[k]->evs) {
      std::int32_t idx = -1;
      std::uint8_t is_net = 1;
      if (ev.kind == CycleEvent::Kind::kFire) {
        is_net = 0;
        const auto it = en.obj_idx.find(ev.ptr);
        if (it == en.obj_idx.end()) return 0;
        idx = it->second;
      } else {
        const auto it = en.net_idx.find(ev.ptr);
        if (it == en.net_idx.end()) return 0;
        idx = it->second;
      }
      f.mix(static_cast<std::uint8_t>(ev.kind));
      f.mix(is_net);
      f.mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(idx)));
      f.mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(ev.sink)));
      ++cnt;
    }
    f.mix(cnt + 1);
    ph[k] = f.value();
  }
  return signature_of(sm->shape_hash, ph);
}

CanonicalProgram::Bound CanonicalProgram::bind(
    Simulator& sim, const std::vector<const CycleRecord*>& window) const {
  Bound out;
  const int p = tpl_.period_;
  if (static_cast<int>(window.size()) != p) return out;
  Enumeration en = Enumeration::of(sim);
  if (serialize_shape(en) != shape_) return out;

  // Canonicalize the detection window against the *target* objects.
  std::vector<std::vector<CanonEv>> win(static_cast<std::size_t>(p));
  for (int k = 0; k < p; ++k) {
    auto& dst = win[static_cast<std::size_t>(k)];
    const auto& evs = window[static_cast<std::size_t>(k)]->evs;
    dst.reserve(evs.size());
    for (const CycleEvent& ev : evs) {
      CanonEv ce;
      ce.kind = static_cast<std::uint8_t>(ev.kind);
      ce.sink = ev.sink;
      if (ev.kind == CycleEvent::Kind::kFire) {
        ce.is_net = 0;
        const auto it = en.obj_idx.find(ev.ptr);
        if (it == en.obj_idx.end()) return out;
        ce.idx = it->second;
      } else {
        ce.is_net = 1;
        const auto it = en.net_idx.find(ev.ptr);
        if (it == en.net_idx.end()) return out;
        ce.idx = it->second;
      }
      dst.push_back(ce);
    }
  }

  // The rotation r with canonical phase (r+i) mod p == window[i] for
  // all i.  The window is one full period, so the cycle about to run
  // repeats window[0]'s phase: entry = r.
  int entry = -1;
  for (int r = 0; r < p && entry < 0; ++r) {
    bool ok = true;
    for (int i = 0; i < p && ok; ++i) {
      ok = phases_[static_cast<std::size_t>((r + i) % p)] ==
           win[static_cast<std::size_t>(i)];
    }
    if (ok) entry = r;
  }
  if (entry < 0) return out;

  out.program = materialize(en);
  out.entry = entry;
  return out;
}

std::unique_ptr<CompiledProgram> CanonicalProgram::bind_cold(
    Simulator& sim) const {
  Enumeration en = Enumeration::of(sim);
  if (serialize_shape(en) != shape_) return nullptr;
  return materialize(en);
}

std::unique_ptr<CompiledProgram> CanonicalProgram::materialize(
    const Enumeration& en) const {
  const int p = tpl_.period_;
  std::unique_ptr<CompiledProgram> q(new CompiledProgram(tpl_));
  q->nets_ = en.nets;
  q->objs_ = en.objs;
  for (std::size_t k = 0; k < q->ops_.size(); ++k) {
    q->ops_[k].obj = en.objs[static_cast<std::size_t>(op_obj_[k])];
  }
  for (std::size_t k = 0; k < q->guards_.size(); ++k) {
    q->guards_[k].input =
        guard_in_[k] >= 0 ? static_cast<InputObject*>(
                                en.objs[static_cast<std::size_t>(guard_in_[k])])
                          : nullptr;
  }
  for (std::size_t k = 0; k < q->fifos_.size(); ++k) {
    q->fifos_[k] = static_cast<RamObject*>(
        en.objs[static_cast<std::size_t>(fifo_idx_[k])]);
  }
  for (std::size_t k = 0; k < q->merges_.size(); ++k) {
    q->merges_[k] = static_cast<AluObject*>(
        en.objs[static_cast<std::size_t>(merge_idx_[k])]);
  }
  for (std::size_t k = 0; k < q->nonfiring_inputs_.size(); ++k) {
    q->nonfiring_inputs_[k] = static_cast<InputObject*>(
        en.objs[static_cast<std::size_t>(nonfiring_idx_[k])]);
  }
  for (std::size_t k = 0; k < q->req_nonempty_inputs_.size(); ++k) {
    q->req_nonempty_inputs_[k] = static_cast<InputObject*>(
        en.objs[static_cast<std::size_t>(req_nonempty_idx_[k])]);
  }
  // Rebuild the stored period with target pointers so the engine's
  // fast re-arm (record compare against interpreted cycles) works on
  // the bound clone exactly as on a locally built program.
  q->records_.resize(static_cast<std::size_t>(p));
  for (int k = 0; k < p; ++k) {
    auto& rec = q->records_[static_cast<std::size_t>(k)];
    const auto& src = phases_[static_cast<std::size_t>(k)];
    rec.evs.clear();
    rec.evs.reserve(src.size());
    for (const CanonEv& ce : src) {
      CycleEvent ev;
      ev.kind = static_cast<CycleEvent::Kind>(ce.kind);
      ev.sink = ce.sink;
      ev.ptr = ce.is_net != 0
                   ? static_cast<const void*>(
                         en.nets[static_cast<std::size_t>(ce.idx)])
                   : static_cast<const void*>(
                         en.objs[static_cast<std::size_t>(ce.idx)]);
      rec.evs.push_back(ev);
    }
    rec.hash = hash_cycle_events(rec.evs);
  }
  return q;
}

// ---------------------------------------------------------------------------
// BatchProgramCache
// ---------------------------------------------------------------------------

std::shared_ptr<const CanonicalProgram> BatchProgramCache::find(
    std::uint32_t crc, std::uint64_t sig) const {
  const std::lock_guard<std::mutex> lock(mu_);
  ++const_cast<Stats&>(stats_).lookups;
  const auto it = map_.find({crc, sig});
  if (it == map_.end()) return nullptr;
  ++const_cast<Stats&>(stats_).hits;
  return it->second;
}

std::vector<std::shared_ptr<const CanonicalProgram>> BatchProgramCache::find_all(
    std::uint32_t crc) const {
  const std::lock_guard<std::mutex> lock(mu_);
  ++const_cast<Stats&>(stats_).lookups;
  std::vector<std::shared_ptr<const CanonicalProgram>> out;
  // map_ is ordered by (crc, sig), so the range scan returns programs
  // in ascending signature order — deterministic for every caller.
  for (auto it = map_.lower_bound({crc, 0}); it != map_.end() && it->first.first == crc;
       ++it) {
    out.push_back(it->second);
  }
  if (!out.empty()) ++const_cast<Stats&>(stats_).hits;
  return out;
}

std::shared_ptr<const CanonicalProgram> BatchProgramCache::insert(
    std::uint32_t crc, std::uint64_t sig,
    std::shared_ptr<const CanonicalProgram> p) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = map_.try_emplace({crc, sig}, std::move(p));
  if (inserted) ++stats_.inserts;
  return it->second;
}

BatchProgramCache::Stats BatchProgramCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

// ---------------------------------------------------------------------------
// CompiledEngine <-> shared cache (declared in compiled.hpp)
// ---------------------------------------------------------------------------

void CompiledEngine::publish(CompiledProgram& pr) {
  if (shared_cache_ == nullptr || pr.canonical_sig_ != 0) return;
  auto cp = CanonicalProgram::capture(sim_, pr);
  if (cp == nullptr) return;
  const std::uint64_t sig = cp->signature();
  pr.canonical_sig_ = sig;
  shared_cache_->insert(shared_crc_, sig, std::move(cp));
}

bool CompiledEngine::adopt_shared(
    const std::shared_ptr<const CanonicalProgram>& image) {
  if (image == nullptr) return false;
  auto pr = image->bind_cold(sim_);
  if (pr == nullptr) return false;
  // The bound clone carries the image's canonical signature (capture
  // stamped the template), so publish() never re-inserts it.
  cache_.insert(cache_.begin(), std::move(pr));
  if (cache_.size() > kCompiledCacheSize) cache_.pop_back();
  fleet_mode_ = true;
  fleet_probation_ = kFleetProbation;
  ++stats_.fleet_adopts;
  return true;
}

bool CompiledEngine::try_bind_shared(
    const std::vector<const CycleRecord*>& period) {
  const std::uint64_t sig =
      CanonicalProgram::window_signature(sim_, period, &shape_memo_);
  if (sig == 0) return false;
  const auto cp = shared_cache_->find(shared_crc_, sig);
  if (cp == nullptr) return false;
  auto bound = cp->bind(sim_, period);
  if (bound.program == nullptr) return false;
  CompiledProgram* pr = bound.program.get();
  // Same screens as a local-cache re-arm: live structural state must
  // equal the entry phase's, and its guards must pass right now.
  if (!pr->phase_matches(sim_, bound.entry)) return false;
  if (!pr->guards_pass_live(bound.entry)) return false;
  if (!pr->arm(sim_, bound.entry)) return false;
  armed_ = pr;
  cache_.insert(cache_.begin(), std::move(bound.program));
  if (cache_.size() > kCompiledCacheSize) cache_.pop_back();
  ++stats_.arms;
  ++stats_.cache_binds;
  reset_detector();
  return true;
}

// ---------------------------------------------------------------------------
// BatchedReplayEngine
// ---------------------------------------------------------------------------

// Everything a lockstep tick reads from the anchor on behalf of every
// lane must compare equal here.
bool BatchedReplayEngine::same_exec_shape(const CompiledProgram& x,
                                          const CompiledProgram& y) {
  using CKind = CompiledProgram::CKind;
  if (x.period_ != y.period_ || x.n_nets_ != y.n_nets_ ||
      x.n_objs_ != y.n_objs_) {
    return false;
  }
  if (x.const_values_ != y.const_values_) return false;
  if (x.op_end_ != y.op_end_ || x.guard_end_ != y.guard_end_ ||
      x.latch_end_ != y.latch_end_ || x.latch_slots_ != y.latch_slots_) {
    return false;
  }
  if (x.phase_has_ != y.phase_has_ || x.phase_mask_ != y.phase_mask_ ||
      x.fifo_phase_ != y.fifo_phase_ || x.merge_phase_ != y.merge_phase_) {
    return false;
  }
  if (x.ops_.size() != y.ops_.size() || x.guards_.size() != y.guards_.size()) {
    return false;
  }
  for (std::size_t k = 0; k < x.ops_.size(); ++k) {
    const auto& a = x.ops_[k];
    const auto& b = y.ops_[k];
    if (a.kind != b.kind || a.op != b.op || a.flags != b.flags ||
        a.shift != b.shift || a.a != b.a || a.b != b.b || a.c != b.c ||
        a.o0 != b.o0 || a.o1 != b.o1) {
      return false;
    }
    // Kinds whose batch execution reads the *anchor* object's
    // parameters on every lane's behalf must prove those parameters
    // equal.  (RAM/FIFO/LUT/IO kinds run on each lane's own object,
    // so their parameters need no cross-lane equality.)
    if (a.kind == CKind::kCounter) {
      const auto& pa = static_cast<const CounterObject*>(a.obj)->params();
      const auto& pb = static_cast<const CounterObject*>(b.obj)->params();
      if (pa.start != pb.start || pa.step != pb.step ||
          pa.modulo != pb.modulo) {
        return false;
      }
    } else if (a.kind == CKind::kAlu && a.op == Opcode::kSel4) {
      if (static_cast<const AluObject*>(a.obj)->params().table !=
          static_cast<const AluObject*>(b.obj)->params().table) {
        return false;
      }
    }
  }
  for (std::size_t k = 0; k < x.guards_.size(); ++k) {
    const auto& a = x.guards_[k];
    const auto& b = y.guards_[k];
    if (a.kind != b.kind || a.expect != b.expect || a.slot != b.slot) {
      return false;
    }
  }
  return true;
}

BatchedReplayEngine::BatchedReplayEngine(BatchProgramCache* cache,
                                         int max_width)
    : cache_(cache),
      max_width_(std::clamp(max_width, 1, simd::kMaxBatchWidth)) {}

int BatchedReplayEngine::add(Simulator& sim, std::uint32_t config_crc) {
  Lane l;
  l.sim = &sim;
  l.crc = config_crc;
  int idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
    lanes_[static_cast<std::size_t>(idx)] = l;
  } else {
    lanes_.push_back(l);
    idx = static_cast<int>(lanes_.size()) - 1;
  }
  if (cache_ != nullptr && sim.compiled_engine() != nullptr) {
    sim.compiled_engine()->set_shared_cache(cache_, config_crc);
  }
  return idx;
}

void BatchedReplayEngine::rekey(int lane, std::uint32_t config_crc) {
  Lane& l = lanes_.at(static_cast<std::size_t>(lane));
  if (l.sim == nullptr) {
    throw std::logic_error("BatchedReplayEngine::rekey: lane was removed");
  }
  l.crc = config_crc;
  if (cache_ != nullptr && l.sim->compiled_engine() != nullptr) {
    l.sim->compiled_engine()->set_shared_cache(cache_, config_crc);
  }
}

void BatchedReplayEngine::set_active(int lane, bool active) {
  Lane& l = lanes_.at(static_cast<std::size_t>(lane));
  if (l.sim == nullptr) {
    throw std::logic_error("BatchedReplayEngine::set_active: lane was removed");
  }
  l.active = active;
}

void BatchedReplayEngine::remove(int lane) {
  Lane& l = lanes_.at(static_cast<std::size_t>(lane));
  if (l.sim == nullptr) return;  // already removed
  l.sim = nullptr;
  l.active = false;
  l.rem = 0;
  l.needs_scalar = false;
  free_.push_back(lane);
}

int BatchedReplayEngine::active_lanes() const {
  int n = 0;
  for (const Lane& l : lanes_) {
    if (l.sim != nullptr && l.active) ++n;
  }
  return n;
}

CompiledProgram* BatchedReplayEngine::armed_program(const Lane& l) {
  CompiledEngine* eng = l.sim->compiled_engine();
  return eng != nullptr ? eng->armed_ : nullptr;
}

bool BatchedReplayEngine::batchable(const Lane& l) const {
  if (l.rem <= 0 || l.needs_scalar) return false;
  // Tracers and fault injectors hook every interpreted/replayed cycle
  // at the boundary; the batch executes none of those hooks, so such
  // lanes stay on the scalar path (bit-identical by construction).
  if (l.sim->tracer_ != nullptr || l.sim->injector_ != nullptr) return false;
  return armed_program(l) != nullptr;
}

void BatchedReplayEngine::run_cycles(long long n) {
  if (n <= 0) return;
  for (Lane& l : lanes_) l.rem = l.active ? n : 0;

  for (;;) {
    int ai = -1;
    for (int i = 0; i < lanes(); ++i) {
      if (batchable(lanes_[static_cast<std::size_t>(i)])) {
        ai = i;
        break;
      }
    }
    if (ai < 0) {
      // No replaying lane: interpret.  Lanes are independent
      // simulators, so each gets a consecutive chunk of cycles — far
      // better cache locality than a one-cycle round-robin across N
      // object graphs — cut short the moment the lane arms so a batch
      // can form.  This also serves guard-ejected lanes their
      // mandatory scalar step, which re-fails the guard and deopts
      // exactly as an unbatched run would.
      constexpr long long kScalarChunk = 128;
      bool any = false;
      for (Lane& l : lanes_) {
        if (l.rem <= 0) continue;
        any = true;
        long long done = 0;
        do {
          l.sim->step();
          l.needs_scalar = false;
          --l.rem;
          ++done;
        } while (done < kScalarChunk && l.rem > 0 && !batchable(l));
        stats_.scalar_cycles += done;
      }
      if (!any) return;
      continue;
    }

    Lane& anchor = lanes_[static_cast<std::size_t>(ai)];
    CompiledProgram* apr = armed_program(anchor);
    const int p = apr->period_;
    pos_ = apr->pos_;
    entry_pos_ = pos_;

    cols_.clear();
    for (int i = ai;
         i < lanes() && static_cast<int>(cols_.size()) < max_width_; ++i) {
      Lane& l = lanes_[static_cast<std::size_t>(i)];
      if (!batchable(l)) continue;
      CompiledProgram* pr = armed_program(l);
      if (i != ai) {
        if (l.crc != anchor.crc || !same_exec_shape(*apr, *pr)) {
          ++stats_.join_rejects;
          continue;
        }
        // Phase alignment: scalar-step the lane up to the anchor's
        // boundary.  It may deopt on the way (guards) — then it just
        // doesn't join this batch.
        const int delta = (pos_ - pr->pos_ + p) % p;
        if (delta > l.rem) continue;
        for (int s = 0; s < delta; ++s) {
          l.sim->step();
          --l.rem;
          ++stats_.scalar_cycles;
        }
        pr = armed_program(l);
        if (l.rem <= 0 || pr == nullptr || pr->pos_ != pos_ ||
            !same_exec_shape(*apr, *pr)) {
          continue;
        }
      }
      Col c;
      c.lane = &l;
      c.pr = pr;
      c.eng = l.sim->compiled_engine();
      c.entry_cycle = l.sim->cycle_;
      cols_.push_back(c);
    }

    long long ticks = cols_[0].lane->rem;
    for (const Col& c : cols_) ticks = std::min(ticks, c.lane->rem);

    if (cols_.size() == 1) {
      // A batch of one gains nothing over the engine's own replay loop.
      Lane& l = *cols_[0].lane;
      const long long did = cols_[0].eng->replay(ticks);
      l.rem -= did;
      stats_.scalar_cycles += did;
      if (did == 0) {
        // Instant guard deopt: interpret one cycle to guarantee
        // progress (the engine already unpacked exact state).
        l.sim->step();
        --l.rem;
        ++stats_.scalar_cycles;
      }
      continue;
    }

    ++stats_.gathers;
    run_batch(ticks);
  }
}

void BatchedReplayEngine::run_batch(long long max_ticks) {
  const int w = static_cast<int>(cols_.size());
  width_ = w;
  cols_n_ = w;
  CompiledProgram* apr = cols_[0].pr;
  slots_ = apr->value_.size();
  val_.resize(slots_ * static_cast<std::size_t>(w));
  stg_.resize(slots_ * static_cast<std::size_t>(w));
  zero_.assign(static_cast<std::size_t>(w), 0);

  using CKind = CompiledProgram::CKind;
  using Guard = CompiledProgram::Guard;

  // Resolve shadow rows: one row per unique stateful object (the same
  // counter/accumulator appears in several phases' op lists).
  op_shadow_.assign(apr->ops_.size(), -1);
  n_cnt_ = n_acc_ = n_cacc_ = 0;
  {
    std::unordered_map<const Object*, std::int32_t> seen;
    for (std::size_t k = 0; k < apr->ops_.size(); ++k) {
      const auto& op = apr->ops_[k];
      if (op.kind != CKind::kCounter && op.kind != CKind::kAccum &&
          op.kind != CKind::kCAccum) {
        continue;
      }
      const auto it = seen.find(op.obj);
      if (it != seen.end()) {
        op_shadow_[k] = it->second;
        continue;
      }
      std::int32_t row = 0;
      switch (op.kind) {
        case CKind::kCounter: row = n_cnt_++; break;
        case CKind::kAccum: row = n_acc_++; break;
        default: row = n_cacc_++; break;
      }
      seen.emplace(op.obj, row);
      op_shadow_[k] = row;
      const std::size_t base = static_cast<std::size_t>(row) * w;
      switch (op.kind) {
        case CKind::kCounter:
          cnt_objs_.resize(base + w);
          for (int c = 0; c < w; ++c) {
            cnt_objs_[base + static_cast<std::size_t>(c)] =
                static_cast<CounterObject*>(cols_[c].pr->ops_[k].obj);
          }
          break;
        case CKind::kAccum:
          acc_objs_.resize(base + w);
          for (int c = 0; c < w; ++c) {
            acc_objs_[base + static_cast<std::size_t>(c)] =
                static_cast<AluObject*>(cols_[c].pr->ops_[k].obj);
          }
          break;
        default:
          cacc_objs_.resize(base + w);
          for (int c = 0; c < w; ++c) {
            cacc_objs_[base + static_cast<std::size_t>(c)] =
                static_cast<AluObject*>(cols_[c].pr->ops_[k].obj);
          }
          break;
      }
    }
  }
  cnt_val_.resize(static_cast<std::size_t>(n_cnt_) * w);
  cnt_rem_.resize(static_cast<std::size_t>(n_cnt_) * w);
  acc_.resize(static_cast<std::size_t>(n_acc_) * w);
  cacc_re_.resize(static_cast<std::size_t>(n_cacc_) * w);
  cacc_im_.resize(static_cast<std::size_t>(n_cacc_) * w);

  for (int c = 0; c < w; ++c) gather_column(c);

  const simd::Kernels& kr = simd::kernels();
  const int p = apr->period_;
  const std::size_t sw = static_cast<std::size_t>(width_);
  Word* const val = val_.data();
  Word* const stg = stg_.data();

  // Pre-bound execution tables.  Operand rows, shadow rows, kernel
  // arguments and per-lane object pointers are all resolved here, once
  // per gather, so the tick loop below does no pointer-chasing through
  // cols_[c].pr->ops_ — it walks two flat arrays.  Row base pointers
  // stay valid across compaction (only lane entries within a row move).
  struct BOp {
    CompiledProgram::CKind kind = CompiledProgram::CKind::kDrop;
    std::uint16_t flags = 0;
    bool sat = false;
    bool dump = false;
    int shift = 0;
    simd::AluCall q{};          ///< kAlu: fully bound except n
    Word* dst = nullptr;        ///< staged destination row
    const Word* src = nullptr;  ///< primary value source row
    const Word* wa = nullptr;   ///< RAM write address row
    const Word* wd = nullptr;   ///< RAM write data row
    Word* aux = nullptr;        ///< dump row / counter wrap-pulse row
    Word* s0 = nullptr;         ///< shadow row (counter value / accum)
    Word* s1 = nullptr;         ///< shadow row (counter remaining)
    long long* c0 = nullptr;    ///< complex-accum re row
    long long* c1 = nullptr;    ///< complex-accum im row
    const CounterParams* cp = nullptr;
    std::int32_t lrow = -1;     ///< live_objs_ row (live kinds only)
  };
  struct BGuard {
    const Word* slot = nullptr;  ///< kValueTruth: value row
    Word expect = 0;
    std::int32_t grow = -1;  ///< kInputNonEmpty: guard_objs_ row
  };

  n_live_ = 0;
  n_gin_ = 0;
  for (const auto& op : apr->ops_) {
    switch (op.kind) {
      case CKind::kRam:
      case CKind::kFifo:
      case CKind::kLut:
      case CKind::kCircLut:
      case CKind::kInput:
      case CKind::kOutput: ++n_live_; break;
      default: break;
    }
  }
  for (const auto& g : apr->guards_) {
    if (g.kind == Guard::Kind::kInputNonEmpty) ++n_gin_;
  }
  live_objs_.assign(static_cast<std::size_t>(n_live_) * sw, nullptr);
  guard_objs_.assign(static_cast<std::size_t>(n_gin_) * sw, nullptr);

  std::vector<BOp> bops(apr->ops_.size());
  {
    const auto vrow = [&](std::int32_t slot) -> const Word* {
      return slot >= 0 ? &val[static_cast<std::size_t>(slot) * sw]
                       : zero_.data();
    };
    const auto srow = [&](std::int32_t slot) -> Word* {
      return slot >= 0 ? &stg[static_cast<std::size_t>(slot) * sw] : nullptr;
    };
    std::int32_t lrow = 0;
    for (std::size_t k = 0; k < apr->ops_.size(); ++k) {
      const auto& op = apr->ops_[k];
      BOp& b = bops[k];
      b.kind = op.kind;
      b.flags = op.flags;
      b.sat = (op.flags & CompiledProgram::kFlagSaturate) != 0;
      b.dump = (op.flags & CompiledProgram::kFlagDump) != 0;
      b.shift = op.shift;
      switch (op.kind) {
        case CKind::kAlu:
          b.q.op = op.op;
          b.q.saturate = b.sat;
          b.q.shift = op.shift;
          b.q.a = vrow(op.a);
          b.q.b = vrow(op.b);
          b.q.c = vrow(op.c);
          b.q.r0 = srow(op.o0);
          b.q.r1 = srow(op.o1);
          if (op.op == Opcode::kSel4) {
            b.q.table = static_cast<AluObject*>(op.obj)->p_.table.data();
          }
          break;
        case CKind::kCopy:
        case CKind::kMergeAltCopy:
          b.dst = srow(op.o0);
          b.src = vrow(op.a);
          break;
        case CKind::kDrop:
          break;
        case CKind::kAccum:
          b.s0 = acc_.data() + static_cast<std::size_t>(op_shadow_[k]) * sw;
          b.src = vrow(op.a);
          b.aux = srow(op.o0);
          break;
        case CKind::kCAccum:
          b.c0 = cacc_re_.data() + static_cast<std::size_t>(op_shadow_[k]) * sw;
          b.c1 = cacc_im_.data() + static_cast<std::size_t>(op_shadow_[k]) * sw;
          b.src = vrow(op.a);
          b.aux = srow(op.o0);
          break;
        case CKind::kCounter:
          b.s0 = cnt_val_.data() + static_cast<std::size_t>(op_shadow_[k]) * sw;
          b.s1 = cnt_rem_.data() + static_cast<std::size_t>(op_shadow_[k]) * sw;
          b.dst = srow(op.o0);
          b.aux = srow(op.o1);
          b.cp = &static_cast<CounterObject*>(op.obj)->params();
          break;
        case CKind::kRam:
          b.src = vrow(op.a);
          b.dst = srow(op.o0);
          b.wa = vrow(op.b);
          b.wd = vrow(op.c);
          break;
        case CKind::kFifo:
          b.src = vrow(op.a);
          b.dst = srow(op.o0);
          break;
        case CKind::kLut:
          b.src = vrow(op.a);
          b.dst = srow(op.o0);
          break;
        case CKind::kCircLut:
          b.dst = srow(op.o0);
          break;
        case CKind::kInput:
          b.dst = srow(op.o0);
          break;
        case CKind::kOutput:
          b.src = vrow(op.a);
          break;
      }
      switch (op.kind) {
        case CKind::kRam:
        case CKind::kFifo:
        case CKind::kLut:
        case CKind::kCircLut:
        case CKind::kInput:
        case CKind::kOutput: {
          b.lrow = lrow;
          const std::size_t base = static_cast<std::size_t>(lrow) * sw;
          for (int c = 0; c < w; ++c) {
            live_objs_[base + static_cast<std::size_t>(c)] =
                cols_[static_cast<std::size_t>(c)].pr->ops_[k].obj;
          }
          ++lrow;
          break;
        }
        default:
          break;
      }
    }
  }
  std::vector<BGuard> bguards(apr->guards_.size());
  {
    std::int32_t grow = 0;
    for (std::size_t gi = 0; gi < apr->guards_.size(); ++gi) {
      const Guard& g = apr->guards_[gi];
      BGuard& b = bguards[gi];
      if (g.kind == Guard::Kind::kValueTruth) {
        b.slot = &val[static_cast<std::size_t>(g.slot) * sw];
        b.expect = g.expect;
      } else {
        b.grow = grow;
        const std::size_t base = static_cast<std::size_t>(grow) * sw;
        for (int c = 0; c < w; ++c) {
          guard_objs_[base + static_cast<std::size_t>(c)] =
              cols_[static_cast<std::size_t>(c)].pr->guards_[gi].input;
        }
        ++grow;
      }
    }
  }

  long long tick = 0;
  while (tick < max_ticks && cols_n_ > 0) {
    const int ph = pos_;
    const int n = cols_n_;

    // Guards -> combined per-lane fail mask.  Evaluated before any
    // mutation, so an ejected lane's state is exactly the boundary
    // state — same contract as the scalar guard deopt.
    std::uint32_t fail = 0;
    const std::int32_t gb =
        ph == 0 ? 0 : apr->guard_end_[static_cast<std::size_t>(ph) - 1];
    const std::int32_t ge = apr->guard_end_[static_cast<std::size_t>(ph)];
    for (std::int32_t gi = gb; gi < ge; ++gi) {
      const BGuard& g = bguards[static_cast<std::size_t>(gi)];
      if (g.grow < 0) {
        fail |= kr.fail_mask(g.slot, g.expect, n);
      } else {
        InputObject* const* qs =
            guard_objs_.data() + static_cast<std::size_t>(g.grow) * sw;
        for (int c = 0; c < n; ++c) {
          if (qs[c]->queue_.empty()) fail |= 1u << static_cast<unsigned>(c);
        }
      }
    }
    if (fail != 0) {
      for (int c = n - 1; c >= 0; --c) {
        if (((fail >> static_cast<unsigned>(c)) & 1u) != 0) {
          cols_[c].lane->needs_scalar = true;
          scatter_column(c, tick);
          compact_column(c);
          ++stats_.guard_exits;
        }
      }
      continue;  // survivors re-check the (side-effect-free) guards
    }

    // Op list.
    const std::int32_t ob =
        ph == 0 ? 0 : apr->op_end_[static_cast<std::size_t>(ph) - 1];
    const std::int32_t oe = apr->op_end_[static_cast<std::size_t>(ph)];
    for (std::int32_t k = ob; k < oe; ++k) {
      BOp& b = bops[static_cast<std::size_t>(k)];
      switch (b.kind) {
        case CKind::kAlu:
          b.q.n = n;
          kr.alu(b.q);
          break;
        case CKind::kCopy:
        case CKind::kMergeAltCopy:
          // Merge toggles are phase-determined; scatter restores them
          // from merge_phase_, so the lockstep body is a plain copy.
          std::memcpy(b.dst, b.src, static_cast<std::size_t>(n) * sizeof(Word));
          break;
        case CKind::kDrop:
          break;
        case CKind::kAccum:
          kr.accum(b.s0, b.src, b.sat, b.dump, b.shift, b.aux, n);
          break;
        case CKind::kCAccum:
          kr.caccum(b.c0, b.c1, b.src, b.dump, b.shift, b.aux, n);
          break;
        case CKind::kCounter:
          kr.counter(b.s0, b.s1, b.cp->start, b.cp->step, b.cp->modulo, b.dst,
                     b.aux, n);
          break;
        case CKind::kRam: {
          Object* const* os =
              live_objs_.data() + static_cast<std::size_t>(b.lrow) * sw;
          for (int c = 0; c < n; ++c) {
            auto* rm = static_cast<RamObject*>(os[c]);
            const auto cap = static_cast<std::uint32_t>(rm->p_.capacity);
            if ((b.flags & CompiledProgram::kFlagRead) != 0) {
              b.dst[c] = rm->mem_[static_cast<std::uint32_t>(b.src[c]) % cap];
            }
            if ((b.flags & CompiledProgram::kFlagWrite) != 0) {
              rm->mem_[static_cast<std::uint32_t>(b.wa[c]) % cap] = b.wd[c];
            }
          }
          break;
        }
        case CKind::kFifo: {
          Object* const* os =
              live_objs_.data() + static_cast<std::size_t>(b.lrow) * sw;
          for (int c = 0; c < n; ++c) {
            auto* rm = static_cast<RamObject*>(os[c]);
            if ((b.flags & CompiledProgram::kFlagRead) != 0) {
              rm->fifo_.push_back(b.src[c]);
            }
            if ((b.flags & CompiledProgram::kFlagWrite) != 0) {
              b.dst[c] = rm->fifo_.front();
              rm->fifo_.pop_front();
            }
          }
          break;
        }
        case CKind::kLut: {
          Object* const* os =
              live_objs_.data() + static_cast<std::size_t>(b.lrow) * sw;
          for (int c = 0; c < n; ++c) {
            auto* rm = static_cast<RamObject*>(os[c]);
            b.dst[c] = rm->p_.preload[static_cast<std::uint32_t>(b.src[c]) %
                                      rm->p_.preload.size()];
          }
          break;
        }
        case CKind::kCircLut: {
          Object* const* os =
              live_objs_.data() + static_cast<std::size_t>(b.lrow) * sw;
          for (int c = 0; c < n; ++c) {
            auto* rm = static_cast<RamObject*>(os[c]);
            b.dst[c] = rm->p_.preload[rm->replay_pos_];
            rm->replay_pos_ = (rm->replay_pos_ + 1) % rm->p_.preload.size();
          }
          break;
        }
        case CKind::kInput: {
          Object* const* os =
              live_objs_.data() + static_cast<std::size_t>(b.lrow) * sw;
          for (int c = 0; c < n; ++c) {
            auto* in = static_cast<InputObject*>(os[c]);
            b.dst[c] = in->queue_.front();
            in->queue_.pop_front();
          }
          break;
        }
        case CKind::kOutput: {
          Object* const* os =
              live_objs_.data() + static_cast<std::size_t>(b.lrow) * sw;
          for (int c = 0; c < n; ++c) {
            static_cast<OutputObject*>(os[c])->data_.push_back(b.src[c]);
          }
          break;
        }
      }
      // Fire accounting is deferred to scatter_column (closed form).
    }

    // Latch: whole rows at once.
    const std::int32_t lb =
        ph == 0 ? 0 : apr->latch_end_[static_cast<std::size_t>(ph) - 1];
    const std::int32_t le = apr->latch_end_[static_cast<std::size_t>(ph)];
    for (std::int32_t li = lb; li < le; ++li) {
      const auto s = static_cast<std::size_t>(
          apr->latch_slots_[static_cast<std::size_t>(li)]);
      std::memcpy(&val[s * sw], &stg[s * sw],
                  static_cast<std::size_t>(n) * sizeof(Word));
    }

    pos_ = ph + 1 == p ? 0 : ph + 1;
    ++tick;
    ++stats_.batch_ticks;
  }

  for (int c = cols_n_ - 1; c >= 0; --c) scatter_column(c, tick);
  cols_n_ = 0;
  cols_.clear();
  cnt_objs_.clear();
  acc_objs_.clear();
  cacc_objs_.clear();
  live_objs_.clear();
  guard_objs_.clear();
}

void BatchedReplayEngine::gather_column(int col) {
  const Col& c = cols_[static_cast<std::size_t>(col)];
  const CompiledProgram& pr = *c.pr;
  const std::size_t sw = static_cast<std::size_t>(width_);
  const std::size_t uc = static_cast<std::size_t>(col);
  for (std::size_t s = 0; s < slots_; ++s) {
    val_[s * sw + uc] = pr.value_[s];
  }
  for (int r = 0; r < n_cnt_; ++r) {
    const std::size_t i = static_cast<std::size_t>(r) * sw + uc;
    cnt_val_[i] = cnt_objs_[i]->value_;
    cnt_rem_[i] = cnt_objs_[i]->remaining_;
  }
  for (int r = 0; r < n_acc_; ++r) {
    const std::size_t i = static_cast<std::size_t>(r) * sw + uc;
    acc_[i] = acc_objs_[i]->acc_;
  }
  for (int r = 0; r < n_cacc_; ++r) {
    const std::size_t i = static_cast<std::size_t>(r) * sw + uc;
    cacc_re_[i] = cacc_objs_[i]->cacc_re_;
    cacc_im_[i] = cacc_objs_[i]->cacc_im_;
  }
}

void BatchedReplayEngine::scatter_column(int col, long long executed) {
  Col& c = cols_[static_cast<std::size_t>(col)];
  CompiledProgram& pr = *c.pr;
  Simulator& sim = *c.lane->sim;
  const std::size_t sw = static_cast<std::size_t>(width_);
  const std::size_t uc = static_cast<std::size_t>(col);

  for (std::size_t s = 0; s < slots_; ++s) {
    pr.value_[s] = val_[s * sw + uc];
  }
  pr.pos_ = pos_;
  for (int r = 0; r < n_cnt_; ++r) {
    const std::size_t i = static_cast<std::size_t>(r) * sw + uc;
    cnt_objs_[i]->value_ = cnt_val_[i];
    cnt_objs_[i]->remaining_ = cnt_rem_[i];
  }
  for (int r = 0; r < n_acc_; ++r) {
    const std::size_t i = static_cast<std::size_t>(r) * sw + uc;
    acc_objs_[i]->acc_ = acc_[i];
  }
  for (int r = 0; r < n_cacc_; ++r) {
    const std::size_t i = static_cast<std::size_t>(r) * sw + uc;
    cacc_objs_[i]->cacc_re_ = cacc_re_[i];
    cacc_objs_[i]->cacc_im_ = cacc_im_[i];
  }
  // Merge toggles are a pure function of the phase boundary (the
  // builder snapshots them per phase); restore from the row instead of
  // toggling per tick.
  const std::size_t mrow = static_cast<std::size_t>(pos_) * pr.merges_.size();
  for (std::size_t m = 0; m < pr.merges_.size(); ++m) {
    pr.merges_[m]->merge_toggle_ = pr.merge_phase_[mrow + m] != 0;
  }

  if (executed <= 0) return;

  // Deferred accounting: phase ph (relative offset off from the entry
  // phase) ran cnt times, the last at entry_cycle + off + floor((E-1-
  // off)/P)*P — exactly the cycles the scalar replay would have
  // stamped.
  const int p = pr.period_;
  for (int ph = 0; ph < p; ++ph) {
    const long long off = (ph - entry_pos_ + p) % p;
    if (off >= executed) continue;
    const long long reps = (executed - 1 - off) / p;
    const long long cnt = 1 + reps;
    const long long last = c.entry_cycle + off + reps * p;
    const std::int32_t ob =
        ph == 0 ? 0 : pr.op_end_[static_cast<std::size_t>(ph) - 1];
    const std::int32_t oe = pr.op_end_[static_cast<std::size_t>(ph)];
    for (std::int32_t k = ob; k < oe; ++k) {
      Object* o = pr.ops_[static_cast<std::size_t>(k)].obj;
      o->fire_count_ += cnt;
      if (o->fired_cycle_ < last) o->fired_cycle_ = last;
    }
    const std::int32_t lb =
        ph == 0 ? 0 : pr.latch_end_[static_cast<std::size_t>(ph) - 1];
    const std::int32_t le = pr.latch_end_[static_cast<std::size_t>(ph)];
    for (std::int32_t li = lb; li < le; ++li) {
      pr.latch_accum_[static_cast<std::size_t>(
          pr.latch_slots_[static_cast<std::size_t>(li)])] += cnt;
    }
    sim.total_fires_ += cnt * (oe - ob);
  }
  sim.cycle_ += executed;
  c.eng->stats_.replayed_cycles += executed;
  stats_.batched_cycles += executed;
  c.lane->rem -= executed;
}

void BatchedReplayEngine::compact_column(int hole) {
  const int last = cols_n_ - 1;
  if (hole != last) {
    const std::size_t sw = static_cast<std::size_t>(width_);
    const std::size_t h = static_cast<std::size_t>(hole);
    const std::size_t l = static_cast<std::size_t>(last);
    for (std::size_t s = 0; s < slots_; ++s) {
      val_[s * sw + h] = val_[s * sw + l];
    }
    // stg_ needs no move: staged values live only between the op list
    // and the latch of one tick, and ejection happens at the guard
    // stage (before any op ran).
    for (int r = 0; r < n_cnt_; ++r) {
      const std::size_t b = static_cast<std::size_t>(r) * sw;
      cnt_val_[b + h] = cnt_val_[b + l];
      cnt_rem_[b + h] = cnt_rem_[b + l];
      cnt_objs_[b + h] = cnt_objs_[b + l];
    }
    for (int r = 0; r < n_acc_; ++r) {
      const std::size_t b = static_cast<std::size_t>(r) * sw;
      acc_[b + h] = acc_[b + l];
      acc_objs_[b + h] = acc_objs_[b + l];
    }
    for (int r = 0; r < n_cacc_; ++r) {
      const std::size_t b = static_cast<std::size_t>(r) * sw;
      cacc_re_[b + h] = cacc_re_[b + l];
      cacc_im_[b + h] = cacc_im_[b + l];
      cacc_objs_[b + h] = cacc_objs_[b + l];
    }
    for (int r = 0; r < n_live_; ++r) {
      const std::size_t b = static_cast<std::size_t>(r) * sw;
      live_objs_[b + h] = live_objs_[b + l];
    }
    for (int r = 0; r < n_gin_; ++r) {
      const std::size_t b = static_cast<std::size_t>(r) * sw;
      guard_objs_[b + h] = guard_objs_[b + l];
    }
    cols_[h] = cols_[l];
  }
  --cols_n_;
}

}  // namespace rsp::xpp

// Counter object: an ALU-PAE configured as a modulo sequence generator.
//
// The paper's despreader and FFT64 mappings use counters to drive
// address generation and comparators ("A simple counter and comparator
// control the multiplexer stages", Section 3.2).
#pragma once

#include "src/common/word.hpp"
#include "src/xpp/object.hpp"

namespace rsp::xpp {

struct CounterParams {
  Word start = 0;
  Word step = 1;
  Word modulo = 0;  ///< > 0: wrap to start when the count reaches start+modulo*step
};

/// Emits start, start+step, ... on out0; emits 1 on out1 on the wrapping
/// step (else 0).  If in0 is bound it acts as a step-enable token: one
/// count per consumed token.
class CounterObject final : public Object {
 public:
  CounterObject(std::string name, CounterParams p)
      : Object(std::move(name), ObjectKind::kCounter),
        p_(p),
        value_(p.start),
        remaining_(p.modulo) {}

  const CounterParams& params() const { return p_; }

 protected:
  bool do_fire() override {
    const bool gated = in_bound(0);
    if (gated && !in_ready(0)) return false;
    if (!out_ready(0) || !out_ready(1)) return false;
    const bool wraps = p_.modulo > 0 && remaining_ == 1;
    out_write(0, value_);
    out_write(1, wraps ? 1 : 0);
    if (gated) in_consume(0);
    if (wraps) {
      value_ = p_.start;
      remaining_ = p_.modulo;
    } else {
      value_ = wrap24(static_cast<long long>(value_) + p_.step);
      if (p_.modulo > 0) --remaining_;
    }
    return true;
  }

 private:
  friend class CompiledProgram;  ///< replays the count/wrap sequence
  friend class BatchedReplayEngine;  ///< shadows the registers per lane
  friend class SnapshotAccess;  ///< bit-exact save/restore (snapshot.hpp)

  CounterParams p_;
  Word value_;
  Word remaining_;
};

}  // namespace rsp::xpp

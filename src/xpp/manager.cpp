#include "src/xpp/manager.hpp"

#include <set>

namespace rsp::xpp {

ConfigurationManager::ConfigurationManager(ArrayGeometry geom,
                                           SchedulerKind sched)
    : resources_(geom), sim_(sched) {}

long long config_load_cycles(const Configuration& cfg) {
  // Distinct source ports = nets to route.
  std::set<std::pair<int, int>> srcs;
  for (const auto& c : cfg.connections) srcs.insert({c.src.object, c.src.port});
  return kLoadCyclesBase +
         kLoadCyclesPerObject * static_cast<long long>(cfg.objects.size()) +
         kLoadCyclesPerNet * static_cast<long long>(srcs.size());
}

ConfigId ConfigurationManager::load(const Configuration& cfg) {
  const ConfigId id = next_id_++;
  const Placement placement = resources_.place(cfg, id);

  // Instantiate runtime objects.
  std::vector<std::unique_ptr<Object>> objects;
  objects.reserve(cfg.objects.size());
  for (const auto& spec : cfg.objects) {
    switch (spec.kind) {
      case ObjectKind::kAlu:
        objects.push_back(std::make_unique<AluObject>(spec.name, spec.alu));
        break;
      case ObjectKind::kCounter:
        objects.push_back(
            std::make_unique<CounterObject>(spec.name, spec.counter));
        break;
      case ObjectKind::kRam:
        objects.push_back(std::make_unique<RamObject>(spec.name, spec.ram));
        break;
      case ObjectKind::kInput:
        objects.push_back(std::make_unique<InputObject>(spec.name));
        break;
      case ObjectKind::kOutput:
        objects.push_back(std::make_unique<OutputObject>(spec.name));
        break;
    }
    for (const auto& [port, value] : spec.consts) {
      objects.back()->set_const(port, value);
    }
  }

  // Build nets: one per distinct source port, fanned out to all sinks.
  std::vector<std::unique_ptr<Net>> nets;
  std::map<std::pair<int, int>, Net*> by_src;
  for (const auto& conn : cfg.connections) {
    const auto key = std::make_pair(conn.src.object, conn.src.port);
    Net* net = nullptr;
    const auto it = by_src.find(key);
    if (it == by_src.end()) {
      nets.push_back(std::make_unique<Net>());
      net = nets.back().get();
      by_src.emplace(key, net);
      objects[static_cast<std::size_t>(conn.src.object)]->bind_out(
          conn.src.port, *net);
    } else {
      net = it->second;
    }
    objects[static_cast<std::size_t>(conn.dst.object)]->bind_in(conn.dst.port,
                                                                *net);
    if (conn.preload) net->preload(*conn.preload);
  }

  // Charge configuration-write time; everything already on the array
  // keeps executing during the load.
  const long long cost = config_load_cycles(cfg);
  sim_.run(cost);
  total_config_cycles_ += cost;

  LoadedConfig lc;
  lc.name = cfg.name;
  lc.group = sim_.add_group(std::move(objects), std::move(nets));
  for (const auto cell : placement.object_cell) {
    if (cell.col < 0) continue;
    if (resources_.geometry().is_ram_col(cell.col)) {
      ++lc.ram_cells;
    } else {
      ++lc.alu_cells;
    }
  }
  for (const auto ch : placement.io_channel) lc.io_channels += (ch >= 0) ? 1 : 0;
  lc.routing_segments = placement.routing_segments;
  lc.load_cycles = cost;
  lc.loaded_at_cycle = sim_.cycle();
  loaded_.emplace(id, lc);
  return id;
}

void ConfigurationManager::release(ConfigId id) {
  const auto it = loaded_.find(id);
  if (it == loaded_.end()) {
    throw ConfigError("manager: release of unknown configuration");
  }
  const long long cost =
      kReleaseCyclesPerObject *
      (it->second.alu_cells + it->second.ram_cells + it->second.io_channels);
  sim_.run(cost);
  total_config_cycles_ += cost;
  sim_.remove_group(it->second.group);
  resources_.release(id);
  loaded_.erase(it);
}

const LoadedConfig& ConfigurationManager::info(ConfigId id) const {
  const auto it = loaded_.find(id);
  if (it == loaded_.end()) {
    throw ConfigError("manager: info for unknown configuration");
  }
  return it->second;
}

InputObject& ConfigurationManager::input(ConfigId id, const std::string& name) {
  auto* obj = sim_.find(info(id).group, name);
  auto* in = dynamic_cast<InputObject*>(obj);
  if (in == nullptr) {
    throw ConfigError("manager: no input object '" + name + "'");
  }
  return *in;
}

OutputObject& ConfigurationManager::output(ConfigId id,
                                           const std::string& name) {
  auto* obj = sim_.find(info(id).group, name);
  auto* out = dynamic_cast<OutputObject*>(obj);
  if (out == nullptr) {
    throw ConfigError("manager: no output object '" + name + "'");
  }
  return *out;
}

}  // namespace rsp::xpp

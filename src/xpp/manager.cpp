#include "src/xpp/manager.hpp"

#include <algorithm>
#include <climits>
#include <cstdlib>
#include <map>
#include <set>
#include <tuple>
#include <utility>

#include "src/xpp/batch.hpp"
#include "src/xpp/builder.hpp"
#include "src/xpp/compiled.hpp"
#include "src/xpp/trace.hpp"

namespace rsp::xpp {

namespace {

/// Levenshtein edit distance — powers the "did you mean" suggestions in
/// the I/O lookup errors.  Names are short, so O(n*m) is fine.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t up = row[j];
      const std::size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[j] = std::min({up + 1, row[j - 1] + 1, diag + cost});
      diag = up;
    }
  }
  return row[b.size()];
}

/// Canonical byte signature of one ObjectSpec — the same fields, in the
/// same order, as the config_crc32 serializer's per-object record, so
/// "changed" means exactly "its canonical serialization differs".
std::vector<std::uint8_t> object_sig(const ObjectSpec& o) {
  std::vector<std::uint8_t> s;
  auto u8 = [&s](std::uint8_t v) { s.push_back(v); };
  auto u32 = [&u8](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  auto word = [&u32](Word v) { u32(static_cast<std::uint32_t>(v)); };
  u32(static_cast<std::uint32_t>(o.name.size()));
  for (const char c : o.name) u8(static_cast<std::uint8_t>(c));
  u8(static_cast<std::uint8_t>(o.kind));
  u8(o.control ? 1 : 0);
  u8(static_cast<std::uint8_t>(o.alu.op));
  u32(static_cast<std::uint32_t>(o.alu.shift));
  u8(o.alu.saturate ? 1 : 0);
  for (const Word w : o.alu.table) word(w);
  word(o.counter.start);
  word(o.counter.step);
  word(o.counter.modulo);
  u8(static_cast<std::uint8_t>(o.ram.mode));
  u32(static_cast<std::uint32_t>(o.ram.capacity));
  u32(static_cast<std::uint32_t>(o.ram.preload.size()));
  for (const Word w : o.ram.preload) word(w);
  u8(o.placement.has_value() ? 1 : 0);
  if (o.placement) {
    u32(static_cast<std::uint32_t>(o.placement->row));
    u32(static_cast<std::uint32_t>(o.placement->col));
  }
  u32(static_cast<std::uint32_t>(o.consts.size()));
  for (const auto& [port, value] : o.consts) {
    u32(static_cast<std::uint32_t>(port));
    word(value);
  }
  return s;
}

/// Fan-out entry of a net diff: one sink binding (order-insensitive —
/// the diff asks "does this net route the same", not "was it listed in
/// the same order").
using FanoutEntry = std::tuple<int, int, long long>;

std::map<std::pair<int, int>, std::vector<FanoutEntry>> net_fanouts(
    const Configuration& cfg) {
  std::map<std::pair<int, int>, std::vector<FanoutEntry>> by_src;
  for (const auto& c : cfg.connections) {
    by_src[{c.src.object, c.src.port}].emplace_back(
        c.dst.object, c.dst.port,
        c.preload ? static_cast<long long>(*c.preload) : LLONG_MIN);
  }
  for (auto& [src, sinks] : by_src) std::sort(sinks.begin(), sinks.end());
  return by_src;
}

}  // namespace

ConfigDelta config_delta(const Configuration& from, const Configuration& to) {
  ConfigDelta d;
  const std::size_t common = std::min(from.objects.size(), to.objects.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (object_sig(from.objects[i]) != object_sig(to.objects[i])) {
      ++d.changed_objects;
    }
  }
  d.changed_objects += static_cast<int>(
      std::max(from.objects.size(), to.objects.size()) - common);

  const auto a = net_fanouts(from);
  const auto b = net_fanouts(to);
  for (const auto& [src, sinks] : a) {
    const auto it = b.find(src);
    if (it == b.end() || it->second != sinks) ++d.changed_nets;
  }
  for (const auto& [src, sinks] : b) {
    if (a.find(src) == a.end()) ++d.changed_nets;
  }
  return d;
}

long long config_delta_cycles(const Configuration& from,
                              const Configuration& to) {
  const ConfigDelta d = config_delta(from, to);
  return kDeltaCyclesBase + kLoadCyclesPerObject * d.changed_objects +
         kLoadCyclesPerNet * d.changed_nets;
}

namespace detail {

void instantiate_config(const Configuration& cfg,
                        std::vector<std::unique_ptr<Object>>& objects,
                        std::vector<std::unique_ptr<Net>>& nets) {
  // Instantiate runtime objects.
  objects.reserve(cfg.objects.size());
  for (const auto& spec : cfg.objects) {
    switch (spec.kind) {
      case ObjectKind::kAlu:
        objects.push_back(std::make_unique<AluObject>(spec.name, spec.alu));
        break;
      case ObjectKind::kCounter:
        objects.push_back(
            std::make_unique<CounterObject>(spec.name, spec.counter));
        break;
      case ObjectKind::kRam:
        objects.push_back(std::make_unique<RamObject>(spec.name, spec.ram));
        break;
      case ObjectKind::kInput:
        objects.push_back(std::make_unique<InputObject>(spec.name));
        break;
      case ObjectKind::kOutput:
        objects.push_back(std::make_unique<OutputObject>(spec.name));
        break;
    }
    for (const auto& [port, value] : spec.consts) {
      objects.back()->set_const(port, value);
    }
  }

  // Build nets: one per distinct source port, fanned out to all sinks.
  std::map<std::pair<int, int>, Net*> by_src;
  for (const auto& conn : cfg.connections) {
    const auto key = std::make_pair(conn.src.object, conn.src.port);
    Net* net = nullptr;
    const auto it = by_src.find(key);
    if (it == by_src.end()) {
      nets.push_back(std::make_unique<Net>());
      net = nets.back().get();
      by_src.emplace(key, net);
      objects[static_cast<std::size_t>(conn.src.object)]->bind_out(
          conn.src.port, *net);
    } else {
      net = it->second;
    }
    objects[static_cast<std::size_t>(conn.dst.object)]->bind_in(conn.dst.port,
                                                                *net);
    if (conn.preload) net->preload(*conn.preload);
  }
}

}  // namespace detail

ConfigurationManager::ConfigurationManager(ArrayGeometry geom,
                                           SchedulerKind sched)
    : resources_(geom), sim_(sched) {}

long long config_load_cycles(const Configuration& cfg) {
  // Distinct source ports = nets to route.
  std::set<std::pair<int, int>> srcs;
  for (const auto& c : cfg.connections) srcs.insert({c.src.object, c.src.port});
  return kLoadCyclesBase +
         kLoadCyclesPerObject * static_cast<long long>(cfg.objects.size()) +
         kLoadCyclesPerNet * static_cast<long long>(srcs.size());
}

void ConfigurationManager::verify_config(const Configuration& cfg) {
  // Integrity first: a configuration stamped by ConfigBuilder::build
  // must hash to its recorded checksum, or it was corrupted between
  // build and load ("configurations cannot be overwritten illegally"
  // extends to: corrupted configurations cannot be written at all).
  if (cfg.checksum) {
    const std::uint32_t got = config_crc32(cfg);
    if (got != *cfg.checksum) {
      throw ConfigError("config '" + cfg.name +
                        "': checksum mismatch (stored " +
                        std::to_string(*cfg.checksum) + ", computed " +
                        std::to_string(got) + ") — rejected before load");
    }
  }
  // Bounds checks for hand-assembled configurations that bypassed
  // ConfigBuilder::validate; out-of-range references must surface as
  // ConfigError before any resource is claimed.
  const int n_obj = static_cast<int>(cfg.objects.size());
  for (const auto& c : cfg.connections) {
    if (c.src.object < 0 || c.src.object >= n_obj || c.dst.object < 0 ||
        c.dst.object >= n_obj || c.src.port < 0 || c.src.port >= kMaxOut ||
        c.dst.port < 0 || c.dst.port >= kMaxIn) {
      throw ConfigError("config '" + cfg.name +
                        "': connection references an out-of-range object or "
                        "port");
    }
  }
}

void ConfigurationManager::register_loaded(
    const Configuration& cfg, ConfigId id, const Placement& placement,
    std::vector<std::unique_ptr<Object>> objects,
    std::vector<std::unique_ptr<Net>> nets, long long cost,
    long long load_begin) {
  LoadedConfig lc;
  lc.name = cfg.name;
  lc.group = sim_.add_group(std::move(objects), std::move(nets));
  if (Tracer* t = sim_.tracer()) {
    // Timeline span for the configuration-bus write, then annotate the
    // freshly registered counter entries with their owning ConfigId and
    // the placement's array coordinates (one Chrome track per PAE row).
    t->on_config_load(id, cfg.name, load_begin, sim_.cycle());
    t->annotate_group(lc.group, id);
    for (std::size_t i = 0; i < cfg.objects.size(); ++i) {
      const Coord cell = placement.object_cell[i];
      if (const Object* o = sim_.find(lc.group, cfg.objects[i].name)) {
        t->annotate_object(o, id, cell.col < 0 ? -1 : cell.row,
                           cell.col < 0 ? -1 : cell.col);
      }
    }
  }
  for (const auto cell : placement.object_cell) {
    if (cell.col < 0) continue;
    if (resources_.geometry().is_ram_col(cell.col)) {
      ++lc.ram_cells;
    } else {
      ++lc.alu_cells;
    }
  }
  for (const auto ch : placement.io_channel) lc.io_channels += (ch >= 0) ? 1 : 0;
  lc.routing_segments = placement.routing_segments;
  lc.load_cycles = cost;
  lc.loaded_at_cycle = sim_.cycle();
  loaded_.emplace(id, lc);
  configs_.emplace(id, cfg);
}

void ConfigurationManager::maybe_adopt_programs(const Configuration& cfg) {
  if (program_cache_ == nullptr || !cfg.checksum) return;
  // The compiled engine detects whole-array periodicity, so published
  // programs are only keyed meaningfully while this configuration is
  // the array's sole resident.
  if (loaded_.size() != 1 || !parked_.empty()) return;
  CompiledEngine* eng = sim_.compiled_engine();
  if (eng == nullptr) return;
  eng->set_shared_cache(program_cache_, *cfg.checksum);
  for (const auto& image : program_cache_->find_all(*cfg.checksum)) {
    eng->adopt_shared(image);
  }
}

void ConfigurationManager::attach_program_cache(BatchProgramCache* cache) {
  program_cache_ = cache;
  if (cache == nullptr) {
    if (CompiledEngine* eng = sim_.compiled_engine()) {
      eng->set_shared_cache(nullptr, 0);
    }
    return;
  }
  // Adopt for an already-resident sole configuration immediately.
  if (loaded_.size() == 1 && parked_.empty()) {
    maybe_adopt_programs(configs_.at(loaded_.begin()->first));
  }
}

ConfigId ConfigurationManager::load(const Configuration& cfg) {
  verify_config(cfg);

  const ConfigId id = next_id_;
  const Placement placement = resources_.place(cfg, id);
  ++next_id_;

  // Everything below may throw (net fan-out past kMaxNetSinks, bad
  // object parameters); the resources claimed by place() must be
  // returned so a failed load leaves the array exactly as it was.
  std::vector<std::unique_ptr<Object>> objects;
  std::vector<std::unique_ptr<Net>> nets;
  try {
    detail::instantiate_config(cfg, objects, nets);
  } catch (...) {
    // Objects and nets were never handed to the simulator; dropping
    // them here plus releasing the placement restores every invariant
    // (id stays consumed — ids are monotonic, not a resource).
    resources_.release(id);
    throw;
  }

  // Charge configuration-write time; everything already on the array
  // keeps executing during the load.  Past this point nothing throws,
  // so the cycle accounting only ever covers successful loads.
  const long long cost = config_load_cycles(cfg);
  const long long load_begin = sim_.cycle();
  sim_.run(cost);
  total_config_cycles_ += cost;

  register_loaded(cfg, id, placement, std::move(objects), std::move(nets),
                  cost, load_begin);
  maybe_adopt_programs(cfg);
  return id;
}

DeltaReport ConfigurationManager::load_delta(ConfigId live,
                                             const Configuration& target) {
  const auto it = loaded_.find(live);
  if (it == loaded_.end()) {
    throw ConfigError("manager: load_delta from unknown configuration " +
                      std::to_string(live));
  }
  verify_config(target);

  const ConfigDelta d = config_delta(configs_.at(live), target);
  const long long cost = kDeltaCyclesBase +
                         kLoadCyclesPerObject * d.changed_objects +
                         kLoadCyclesPerNet * d.changed_nets;

  // Materialize the target exactly like a fresh load — identical
  // objects, nets, preloads — before touching anything; a throw here
  // leaves the live configuration running untouched.
  std::vector<std::unique_ptr<Object>> objects;
  std::vector<std::unique_ptr<Net>> nets;
  detail::instantiate_config(target, objects, nets);

  // Swap the resource claims: free the live configuration's and place
  // the target under a fresh id.  The release-then-place order is what
  // makes the result identical to a full release+load (same first-fit
  // state); the copy restores the map exactly if placement fails.
  const ResourceMap backup = resources_;
  const ConfigId id = next_id_;
  resources_.release(live);
  Placement placement;
  try {
    placement = resources_.place(target, id);
  } catch (...) {
    resources_ = backup;
    throw;
  }
  ++next_id_;

  // Past this point nothing throws.  Charge the delta cost (the live
  // configuration keeps executing while the changed PAEs are written),
  // then swap the groups at one cycle boundary.
  const long long begin = sim_.cycle();
  sim_.run(cost);
  total_config_cycles_ += cost;

  const std::string old_name = it->second.name;
  sim_.remove_group(it->second.group);
  if (Tracer* t = sim_.tracer()) {
    t->on_config_release(live, old_name, begin, sim_.cycle());
  }
  loaded_.erase(it);
  configs_.erase(live);

  register_loaded(target, id, placement, std::move(objects), std::move(nets),
                  cost, begin);
  maybe_adopt_programs(target);
  return {id, d.changed_objects, d.changed_nets, cost};
}

void ConfigurationManager::park(ConfigId id) {
  const auto it = loaded_.find(id);
  if (it == loaded_.end()) {
    throw ConfigError("manager: park of unknown configuration " +
                      std::to_string(id));
  }
  const long long begin = sim_.cycle();
  sim_.run(kParkCycles);
  total_config_cycles_ += kParkCycles;
  sim_.remove_group(it->second.group);
  if (Tracer* t = sim_.tracer()) {
    t->on_config_release(id, it->second.name, begin, sim_.cycle());
  }
  LoadedConfig lc = std::move(it->second);
  lc.group = -1;
  parked_.emplace(id, std::move(lc));
  loaded_.erase(it);
}

void ConfigurationManager::acquire(ConfigId id) {
  const auto it = parked_.find(id);
  if (it == parked_.end()) {
    throw ConfigError("manager: acquire of configuration " +
                      std::to_string(id) + " which is not parked");
  }
  const Configuration& cfg = configs_.at(id);
  // Fresh dynamic state, identical to a newly loaded instance; a throw
  // here leaves the configuration parked and the pool untouched.
  std::vector<std::unique_ptr<Object>> objects;
  std::vector<std::unique_ptr<Net>> nets;
  detail::instantiate_config(cfg, objects, nets);

  const long long begin = sim_.cycle();
  sim_.run(kAcquireCycles);
  total_config_cycles_ += kAcquireCycles;

  LoadedConfig lc = std::move(it->second);
  parked_.erase(it);
  lc.group = sim_.add_group(std::move(objects), std::move(nets));
  lc.load_cycles = kAcquireCycles;
  lc.loaded_at_cycle = sim_.cycle();
  if (Tracer* t = sim_.tracer()) {
    t->on_config_load(id, lc.name, begin, sim_.cycle());
    t->annotate_group(lc.group, id);
  }
  loaded_.emplace(id, std::move(lc));
  maybe_adopt_programs(cfg);
}

LoadReport ConfigurationManager::try_load(const Configuration& cfg) {
  LoadReport r;
  try {
    r.id = load(cfg);
  } catch (const std::exception& e) {
    r.error = e.what();
  }
  return r;
}

void ConfigurationManager::release(ConfigId id) {
  const auto it = loaded_.find(id);
  if (it == loaded_.end()) {
    // A parked configuration has no group to remove — just free its
    // claims and charge the release cost.
    const auto pit = parked_.find(id);
    if (pit != parked_.end()) {
      const long long cost =
          kReleaseCyclesPerObject * (pit->second.alu_cells +
                                     pit->second.ram_cells +
                                     pit->second.io_channels);
      const long long release_begin = sim_.cycle();
      sim_.run(cost);
      total_config_cycles_ += cost;
      if (Tracer* t = sim_.tracer()) {
        t->on_config_release(id, pit->second.name, release_begin, sim_.cycle());
      }
      resources_.release(id);
      parked_.erase(pit);
      configs_.erase(id);
      return;
    }
    throw ConfigError("manager: release of unknown configuration");
  }
  const long long cost =
      kReleaseCyclesPerObject *
      (it->second.alu_cells + it->second.ram_cells + it->second.io_channels);
  const long long release_begin = sim_.cycle();
  const std::string name = it->second.name;
  sim_.run(cost);
  total_config_cycles_ += cost;
  sim_.remove_group(it->second.group);
  if (Tracer* t = sim_.tracer()) {
    t->on_config_release(id, name, release_begin, sim_.cycle());
  }
  resources_.release(id);
  loaded_.erase(it);
  configs_.erase(id);
}

const LoadedConfig& ConfigurationManager::info(ConfigId id) const {
  const auto it = loaded_.find(id);
  if (it == loaded_.end()) {
    std::string msg =
        "manager: unknown ConfigId " + std::to_string(id);
    if (loaded_.empty()) {
      msg += " (no configurations loaded)";
    } else {
      // Point at the numerically nearest live id — the common mistakes
      // are an already-released id or an off-by-one.
      const LoadedConfig* nearest = nullptr;
      ConfigId nearest_id = kNoConfig;
      long long best = -1;
      for (const auto& [lid, lc] : loaded_) {
        const long long d = std::abs(static_cast<long long>(lid) - id);
        if (best < 0 || d < best) {
          best = d;
          nearest = &lc;
          nearest_id = lid;
        }
      }
      msg += " (nearest loaded: " + std::to_string(nearest_id) + " '" +
             nearest->name + "')";
    }
    throw ConfigError(msg);
  }
  return it->second;
}

Object& ConfigurationManager::find_io(ConfigId id, const std::string& name,
                                      ObjectKind want) {
  const LoadedConfig& lc = info(id);
  Object* obj = sim_.find(lc.group, name);
  if (obj == nullptr) {
    std::string msg = "config " + std::to_string(id) + " '" + lc.name +
                      "': no object named '" + name + "'";
    // Suggest the closest-named object in the group.
    std::string best_name;
    std::size_t best = std::string::npos;
    for (const auto& st : sim_.stats(lc.group)) {
      const std::size_t d = edit_distance(name, st.name);
      if (d < best) {
        best = d;
        best_name = st.name;
      }
    }
    if (!best_name.empty()) msg += " (did you mean '" + best_name + "'?)";
    throw ConfigError(msg);
  }
  if (obj->kind() != want) {
    throw ConfigError("config " + std::to_string(id) + " '" + lc.name +
                      "': object '" + name + "' is " +
                      (want == ObjectKind::kInput ? "not an input channel"
                                                  : "not an output channel") +
                      " (it is " + object_kind_name(obj->kind()) + " '" + name +
                      "')");
  }
  return *obj;
}

InputObject& ConfigurationManager::input(ConfigId id, const std::string& name) {
  return static_cast<InputObject&>(find_io(id, name, ObjectKind::kInput));
}

OutputObject& ConfigurationManager::output(ConfigId id,
                                           const std::string& name) {
  return static_cast<OutputObject&>(find_io(id, name, ObjectKind::kOutput));
}

}  // namespace rsp::xpp

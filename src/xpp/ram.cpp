#include "src/xpp/ram.hpp"

#include <algorithm>

#include "src/common/word.hpp"

namespace rsp::xpp {

RamObject::RamObject(std::string name, RamParams p)
    : Object(std::move(name), ObjectKind::kRam), p_(std::move(p)) {
  if (p_.capacity <= 0 || p_.capacity > kRamWords) {
    throw ConfigError("RAM '" + this->name() + "': capacity out of range");
  }
  if (static_cast<int>(p_.preload.size()) > p_.capacity) {
    throw ConfigError("RAM '" + this->name() + "': preload exceeds capacity");
  }
  switch (p_.mode) {
    case RamMode::kRam:
    case RamMode::kLut:
    case RamMode::kCircularLut:
      mem_.assign(static_cast<std::size_t>(p_.capacity), 0);
      std::copy(p_.preload.begin(), p_.preload.end(), mem_.begin());
      break;
    case RamMode::kFifo:
      fifo_.assign(p_.preload.begin(), p_.preload.end());
      break;
  }
  if ((p_.mode == RamMode::kLut || p_.mode == RamMode::kCircularLut) &&
      p_.preload.empty()) {
    throw ConfigError("RAM '" + this->name() + "': LUT mode requires preload");
  }
}

bool RamObject::corrupt_word(int addr, Word mask) {
  if (addr < 0) return false;
  const auto i = static_cast<std::size_t>(addr);
  switch (p_.mode) {
    case RamMode::kRam:
      if (i >= mem_.size()) return false;
      mem_[i] = wrap24(mem_[i] ^ mask);
      return true;
    case RamMode::kLut:
    case RamMode::kCircularLut:
      if (i >= p_.preload.size()) return false;
      p_.preload[i] = wrap24(p_.preload[i] ^ mask);
      return true;
    case RamMode::kFifo:
      if (i >= fifo_.size()) return false;
      fifo_[i] = wrap24(fifo_[i] ^ mask);
      return true;
  }
  return false;
}

Word RamObject::peek_word(int addr) const {
  const auto i = static_cast<std::size_t>(addr);
  switch (p_.mode) {
    case RamMode::kRam:
      return i < mem_.size() ? mem_[i] : 0;
    case RamMode::kLut:
    case RamMode::kCircularLut:
      return i < p_.preload.size() ? p_.preload[i] : 0;
    case RamMode::kFifo:
      return i < fifo_.size() ? fifo_[i] : 0;
  }
  return 0;
}

bool RamObject::do_fire() {
  switch (p_.mode) {
    case RamMode::kRam:         return fire_ram();
    case RamMode::kFifo:        return fire_fifo();
    case RamMode::kLut:         return fire_lut();
    case RamMode::kCircularLut: return fire_circular();
  }
  return false;
}

bool RamObject::fire_ram() {
  // Dual-ported: read and write ports operate independently; either or
  // both may transfer in one cycle.
  bool any = false;
  if (in_bound(0) && in_ready(0) && out_ready(0)) {
    const auto addr = static_cast<std::size_t>(
        static_cast<std::uint32_t>(in_peek(0)) %
        static_cast<std::uint32_t>(p_.capacity));
    out_write(0, mem_[addr]);
    in_consume(0);
    any = true;
  }
  if (in_bound(1) && in_bound(2) && in_ready(1) && in_ready(2)) {
    const auto addr = static_cast<std::size_t>(
        static_cast<std::uint32_t>(in_peek(1)) %
        static_cast<std::uint32_t>(p_.capacity));
    mem_[addr] = in_peek(2);
    in_consume(1);
    in_consume(2);
    any = true;
  }
  return any;
}

bool RamObject::fire_fifo() {
  bool any = false;
  if (in_bound(0) && in_ready(0) &&
      static_cast<int>(fifo_.size()) < p_.capacity) {
    fifo_.push_back(in_peek(0));
    in_consume(0);
    any = true;
  }
  if (!fifo_.empty() && out_bound(0) && out_ready(0)) {
    out_write(0, fifo_.front());
    fifo_.pop_front();
    any = true;
  }
  return any;
}

bool RamObject::fire_lut() {
  if (!in_ready(0) || !out_ready(0)) return false;
  const auto addr = static_cast<std::size_t>(
      static_cast<std::uint32_t>(in_peek(0)) % p_.preload.size());
  out_write(0, p_.preload[addr]);
  in_consume(0);
  return true;
}

bool RamObject::fire_circular() {
  const bool gated = in_bound(0);
  if (gated && !in_ready(0)) return false;
  if (!out_ready(0)) return false;
  out_write(0, p_.preload[replay_pos_]);
  replay_pos_ = (replay_pos_ + 1) % p_.preload.size();
  if (gated) in_consume(0);
  return true;
}

}  // namespace rsp::xpp

// Bit-exact snapshot/restore of the XPP runtime.
//
// A snapshot captures everything the simulation's future depends on —
// net token state (value/occupancy/consumed-mask/generation), every
// object's architectural registers (ALU accumulators and merge
// toggles, counter value/remaining, RAM/FIFO/LUT contents and replay
// position, I/O queues and collected output words), configuration
// residency (each loaded Configuration plus its bookkeeping) and the
// raw ResourceMap occupancy — framed in a CRC-32-checked, versioned
// binary format that reuses the canonical-serialization discipline of
// the configuration checksum (src/xpp/builder.cpp): fixed field order,
// tagged records, explicit lengths.
//
// Restore contract (the differential battery in tests/xpp/
// test_snapshot.cpp pins this): the post-restore trajectory is
// bit-identical to the uninterrupted run under every SchedulerKind.
//  - kScan needs no scheduler state: it rescans everything.
//  - kEventDriven is reseeded conservatively: every object is enqueued
//    and every net with a pending commit is marked dirty.  Enqueuing
//    extra objects cannot change the firing fixed point (readiness
//    rules, not worklist membership, decide fires — the kScan
//    equivalence proof), so the trajectory is exact even though the
//    worklist contents differ from the uninterrupted run's.
//  - kCompiled snapshots deoptimize first (epoch SoA state is packed
//    back into the nets) and restore to a fresh detector.  Re-detection
//    costs interpreted warm-up cycles but never bit-exactness: replay
//    is bit-identical to interpretation by construction, no matter
//    when (or whether) the restored run re-arms.
//  - An installed FaultInjector can be captured alongside (plan cursor,
//    live stuck-at windows, SEU RNG state, event log), so a snapshot
//    taken inside an armed fault window resumes the identical fault
//    stream.
//
// Out of scope: Tracer counters (observability, not simulation state)
// and CompiledEngine statistics (the restored engine re-detects).
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>

#include "src/xpp/manager.hpp"

namespace rsp::xpp {

class FaultInjector;

/// Diagnostic failure while framing, parsing or applying a snapshot:
/// truncated or bit-flipped files, wrong magic/version, CRC mismatch,
/// or a payload inconsistent with the target (geometry/scheduler
/// mismatch, non-fresh manager).  Corruption is always detected at the
/// frame check, before any state is touched — a failed restore never
/// leaves a partial result.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what) : std::runtime_error(what) {}
};

namespace snap {

/// CRC-32 (IEEE 802.3, reflected, init/final 0xFFFFFFFF) over a byte
/// range — table-driven, unlike the bitwise dedhw::Crc the
/// configuration checksum uses, because snapshot payloads are
/// kilobytes, not tens of bytes.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t n);

/// Little-endian byte sink (the writer half of the canonical format).
class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i64(long long v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void b(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes_.append(s);
  }

  [[nodiscard]] const std::string& bytes() const { return bytes_; }
  [[nodiscard]] std::string take() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

/// Bounds-checked reader; every overrun throws SnapshotError instead
/// of reading past the payload.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : p_(bytes) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(p_[pos_++]);
  }
  [[nodiscard]] std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
  }
  [[nodiscard]] long long i64() { return static_cast<long long>(u64()); }
  [[nodiscard]] double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  [[nodiscard]] bool b() { return u8() != 0; }
  [[nodiscard]] std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(p_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  [[nodiscard]] std::size_t remaining() const { return p_.size() - pos_; }
  [[nodiscard]] bool done() const { return remaining() == 0; }

 private:
  void need(std::size_t n) const {
    if (p_.size() - pos_ < n) {
      throw SnapshotError("snapshot: truncated payload (need " +
                          std::to_string(n) + " byte(s), have " +
                          std::to_string(p_.size() - pos_) + ")");
    }
  }

  std::string_view p_;
  std::size_t pos_ = 0;
};

/// Frame layout: magic (8 bytes) | version u32 | payload length u64 |
/// payload CRC-32 u32 | payload.  unframe() re-validates all four
/// before returning the payload view.
[[nodiscard]] std::string frame(const char magic[8], std::uint32_t version,
                                const std::string& payload);
[[nodiscard]] std::string_view unframe(const char magic[8],
                                       std::uint32_t version,
                                       std::string_view bytes);

/// Atomic file emission: write to "<path>.tmp", flush, then rename over
/// @p path — a reader (or a resume after SIGKILL) sees either the old
/// complete file or the new complete file, never a torn write.
void write_file_atomic(const std::string& path, const std::string& bytes);

/// Whole-file read; throws SnapshotError when the file cannot be read.
[[nodiscard]] std::string read_file(const std::string& path);

}  // namespace snap

/// Snapshot format version stamped into every frame.
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Parsed snapshot header (no state is applied).
struct SnapshotInfo {
  std::uint32_t version = 0;
  ArrayGeometry geometry;
  SchedulerKind scheduler = SchedulerKind::kEventDriven;
  long long cycle = 0;
  std::uint32_t configs = 0;       ///< resident configurations
  bool has_fault_state = false;    ///< a FaultInjector was captured
};

/// Serialize the complete state of @p mgr (and, optionally, the
/// injector driving its simulator).  Under kCompiled any live epoch is
/// deoptimized first — observable simulation state is unchanged (same
/// logical-const contract as Simulator::diagnose).
[[nodiscard]] std::string save_snapshot(const ConfigurationManager& mgr,
                                        const FaultInjector* injector = nullptr);

/// Parse and validate the frame + header without applying anything.
[[nodiscard]] SnapshotInfo peek_snapshot(const std::string& bytes);

/// Restore @p bytes into @p mgr, which must be freshly constructed
/// (cycle 0, nothing loaded) with the snapshot's geometry and
/// scheduler kind.  If the snapshot carries fault-injector state,
/// @p injector must be non-null; it is filled and installed on the
/// restored simulator.  Throws SnapshotError on any mismatch; the
/// frame CRC is verified before any state is touched.
void restore_snapshot(ConfigurationManager& mgr, const std::string& bytes,
                      FaultInjector* injector = nullptr);

/// Convenience: construct a manager matching the snapshot's geometry
/// and scheduler, then restore into it.
[[nodiscard]] std::unique_ptr<ConfigurationManager> restore_snapshot_new(
    const std::string& bytes, FaultInjector* injector = nullptr);

/// File variants (atomic temp+rename on save).
void save_snapshot_file(const std::string& path,
                        const ConfigurationManager& mgr,
                        const FaultInjector* injector = nullptr);
[[nodiscard]] std::unique_ptr<ConfigurationManager> restore_snapshot_file(
    const std::string& path, FaultInjector* injector = nullptr);

}  // namespace rsp::xpp

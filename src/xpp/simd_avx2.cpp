// AVX2 instantiation of the lane kernels.  This TU is the only one
// built with -mavx2 (added by src/xpp/CMakeLists.txt when the compiler
// accepts the flag); everything outside it must stay baseline-ISA so
// the binary still runs on non-AVX2 hosts — dispatch in simd.cpp only
// follows the pointer returned here after __builtin_cpu_supports says
// the feature is present.
#include "src/xpp/simd.hpp"

#include "src/common/cplx.hpp"
#include "src/common/word.hpp"

namespace rsp::xpp::simd::detail {

#if defined(__AVX2__) && !defined(RSP_SIMD_OFF)

namespace avx2 {
#include "src/xpp/simd_lanes.inc"
}  // namespace avx2

const Kernels* avx2_kernels() { return &avx2::kTable; }

#else

const Kernels* avx2_kernels() { return nullptr; }

#endif

}  // namespace rsp::xpp::simd::detail

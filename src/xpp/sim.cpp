#include "src/xpp/sim.hpp"

#include <cstdio>

namespace rsp::xpp {

Simulator::GroupId Simulator::add_group(
    std::vector<std::unique_ptr<Object>> objects,
    std::vector<std::unique_ptr<Net>> nets) {
  const GroupId id = next_id_++;
  groups_.emplace(id, Group{std::move(objects), std::move(nets)});
  return id;
}

void Simulator::remove_group(GroupId id) { groups_.erase(id); }

int Simulator::step() {
  for (auto& [id, g] : groups_) {
    (void)id;
    for (auto& o : g.objects) o->begin_cycle();
  }
  int fires = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& [id, g] : groups_) {
      (void)id;
      for (auto& o : g.objects) {
        if (!o->fired_this_cycle() && o->clock()) {
          progress = true;
          ++fires;
        }
      }
    }
  }
  for (auto& [id, g] : groups_) {
    (void)id;
    for (auto& n : g.nets) n->commit();
  }
  ++cycle_;
  total_fires_ += fires;
  return fires;
}

void Simulator::run(long long n) {
  for (long long i = 0; i < n; ++i) step();
}

long long Simulator::run_until_quiescent(long long max_cycles) {
  for (long long i = 0; i < max_cycles; ++i) {
    if (step() == 0) return i + 1;
  }
  return max_cycles;
}

Object* Simulator::find(GroupId id, const std::string& name) {
  const auto it = groups_.find(id);
  if (it == groups_.end()) return nullptr;
  for (auto& o : it->second.objects) {
    if (o->name() == name) return o.get();
  }
  return nullptr;
}

std::vector<ObjectStats> Simulator::stats(GroupId id) const {
  std::vector<ObjectStats> out;
  const auto it = groups_.find(id);
  if (it == groups_.end()) return out;
  out.reserve(it->second.objects.size());
  for (const auto& o : it->second.objects) {
    out.push_back({o->name(), o->fire_count()});
  }
  return out;
}

std::string Simulator::utilization_report(GroupId id, long long cycles) const {
  if (cycles < 0) cycles = cycle_;
  std::string out;
  char line[128];
  for (const auto& s : stats(id)) {
    const double u = cycles > 0 ? static_cast<double>(s.fires) /
                                      static_cast<double>(cycles)
                                : 0.0;
    std::snprintf(line, sizeof(line), "%-16s %10lld fires  %5.1f %%\n",
                  s.name.c_str(), s.fires, 100.0 * u);
    out += line;
  }
  return out;
}

int Simulator::object_count() const {
  int n = 0;
  for (const auto& [id, g] : groups_) {
    (void)id;
    n += static_cast<int>(g.objects.size());
  }
  return n;
}

}  // namespace rsp::xpp

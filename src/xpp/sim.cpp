#include "src/xpp/sim.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "src/xpp/compiled.hpp"
#include "src/xpp/fault.hpp"
#include "src/xpp/trace.hpp"

namespace rsp::xpp {

Simulator::Simulator(SchedulerKind kind) : kind_(kind) {
  if (kind_ == SchedulerKind::kCompiled) {
    compiled_ = std::make_unique<CompiledEngine>(*this);
  }
}

Simulator::~Simulator() = default;

const char* run_termination_name(RunTermination t) {
  switch (t) {
    case RunTermination::kCompleted:  return "completed";
    case RunTermination::kDeadlocked: return "deadlocked";
    case RunTermination::kMaxCycles:  return "max_cycles";
  }
  return "?";
}

std::string StallReport::to_string() const {
  std::string out = "run ";
  out += run_termination_name(termination);
  out += " after " + std::to_string(cycles) + " cycles, " +
         std::to_string(tokens_in_flight) + " token(s) in flight\n";
  for (const auto& b : blocked) {
    out += "  blocked: '" + b.name + "' (last fired cycle " +
           std::to_string(b.last_fire_cycle) + ")";
    for (const auto& w : b.waiting_on) out += "\n    " + w;
    out += '\n';
  }
  if (!hot_nets.empty()) {
    out += "  hottest blocked nets:\n";
    for (const auto& h : hot_nets) {
      out += "    " + h.label + ": occupied " +
             std::to_string(h.occupied_cycles) + " cyc, backpressure " +
             std::to_string(h.backpressure_cycles) + " cyc, tokens " +
             std::to_string(h.tokens) + '\n';
    }
  }
  return out;
}

Simulator::GroupId Simulator::add_group(
    std::vector<std::unique_ptr<Object>> objects,
    std::vector<std::unique_ptr<Net>> nets) {
  // Compiled programs hold raw pointers into the group set; any array
  // change drops them (and deoptimizes first, restoring exact state).
  if (compiled_ != nullptr) compiled_->invalidate();
  const GroupId id = next_id_++;
  auto [it, inserted] =
      groups_.emplace(id, Group{std::move(objects), std::move(nets), {}});
  Group& g = it->second;
  g.by_name.reserve(g.objects.size());
  for (auto& o : g.objects) {
    g.by_name.emplace(o->name(), o.get());
    if (kind_ != SchedulerKind::kScan) {
      o->attach_scheduler(this);
      enqueue_next(o.get());
    }
  }
  if (tracer_ != nullptr) {
    tracer_->on_group_added(id, g.objects, g.nets);
    for (auto& o : g.objects) o->attach_trace(tracer_);
  }
  group_cache_.clear();
  for (auto& [gid, grp] : groups_) {
    (void)gid;
    group_cache_.push_back(&grp);
  }
  return id;
}

void Simulator::attach_trace(Tracer* tracer) {
  if (tracer_ == tracer) return;
  // A live epoch resolved (or skipped) tracer counter pointers at arm
  // time; swapping tracers invalidates them.
  if (compiled_ != nullptr) compiled_->deoptimize();
  if (tracer_ != nullptr) {
    // Detach the previous tracer's per-object fire hooks; it keeps the
    // counters it has collected so far.
    for (Group* g : group_cache_) {
      for (auto& o : g->objects) o->attach_trace(nullptr);
    }
  }
  tracer_ = tracer;
  if (tracer_ == nullptr) return;
  tracer_->on_attach(cycle_);
  for (auto& [gid, g] : groups_) {
    tracer_->on_group_added(gid, g.objects, g.nets);
    for (auto& o : g.objects) o->attach_trace(tracer_);
  }
}

void Simulator::remove_group(GroupId id) {
  const auto it = groups_.find(id);
  if (it == groups_.end()) return;
  if (compiled_ != nullptr) compiled_->invalidate();
  if (kind_ != SchedulerKind::kScan) {
    // Purge stale waiters: pending worklist entries and dirty nets may
    // point into the group being destroyed.
    std::unordered_set<const Object*> dead_objs;
    for (const auto& o : it->second.objects) dead_objs.insert(o.get());
    std::unordered_set<const Net*> dead_nets;
    for (const auto& n : it->second.nets) dead_nets.insert(n.get());
    const auto purge_objs = [&](std::vector<Object*>& v) {
      std::erase_if(v, [&](Object* o) { return dead_objs.count(o) > 0; });
    };
    purge_objs(ready_);
    purge_objs(next_ready_);
    std::erase_if(dirty_nets_,
                  [&](Net* n) { return dead_nets.count(n) > 0; });
  }
  if (tracer_ != nullptr) {
    // Retire the group's counter entries before the pointers they are
    // keyed on die — partial reconfiguration must not leave the tracer
    // holding dangling per-PAE/per-net entries.
    tracer_->on_group_removed(it->second.objects, it->second.nets);
  }
  groups_.erase(it);
  group_cache_.clear();
  for (auto& [gid, grp] : groups_) {
    (void)gid;
    group_cache_.push_back(&grp);
  }
}

int Simulator::step() {
  if (kind_ == SchedulerKind::kCompiled) return step_compiled();
  const int fires = kind_ == SchedulerKind::kScan ? step_scan() : step_event();
  // The trace sampler runs at the cycle boundary (post-commit), where
  // both schedulers hold bit-identical net/object state — so kScan and
  // kEventDriven produce identical counters.  It runs *before* fault
  // injection so the counters describe the machine state the cycle
  // actually computed, not the post-strike mutation.
  if (tracer_ != nullptr && tracer_->tracing()) tracer_->on_cycle(*this);
  // Fault strikes land at the cycle boundary (post-commit), where both
  // schedulers hold bit-identical net/object state — so kScan and
  // kEventDriven observe the same fault stream from the same plan.
  if (injector_ != nullptr && injector_->armed()) injector_->on_cycle(*this);
  return fires;
}

int Simulator::step_compiled() {
  CompiledEngine& eng = *compiled_;
  if (eng.armed()) {
    // Fault plans mutate state the epoch assumes invariant: fall back
    // to the interpreter for as long as one is armed.
    if (injector_ != nullptr && injector_->armed()) {
      eng.deoptimize();
    } else {
      const int fires = eng.exec_one();
      if (fires >= 0) return fires;
      // Guard deopt restored interpreter state at this boundary; the
      // cycle is interpreted below instead.
    }
  }
  const int fires = step_event();
  if (tracer_ != nullptr && tracer_->tracing()) tracer_->on_cycle(*this);
  if (injector_ != nullptr && injector_->armed()) injector_->on_cycle(*this);
  eng.end_cycle();
  return fires;
}

int Simulator::step_scan() {
  const long long cyc = cycle_;
  int fires = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (Group* g : group_cache_) {
      for (auto& o : g->objects) {
        if (!o->fired_in(cyc) && o->clock(cyc)) {
          progress = true;
          ++fires;
        }
      }
    }
  }
  for (Group* g : group_cache_) {
    for (auto& n : g->nets) n->commit();
  }
  ++cycle_;
  total_fires_ += fires;
  return fires;
}

int Simulator::step_event() {
  const long long cyc = cycle_;
  // Seed the worklist with the objects touched by last cycle's token
  // events (and external wakes).  Draining it reaches the same fixed
  // point the full rescan does: firing an object can only *enable*
  // others (consuming frees a producer's slot; staging touches only the
  // firer's own nets), so any object it enables is enqueued before the
  // drain ends, and an object never enqueued could not have fired.
  ready_.swap(next_ready_);
  int fires = 0;
  for (std::size_t i = 0; i < ready_.size(); ++i) {
    Object* o = ready_[i];
    o->set_sched_queued(false);
    if (o->fired_in(cyc)) continue;
    if (o->clock(cyc)) {
      ++fires;
      if (compiled_ != nullptr) compiled_->record_fire(*o);
      // Firing changed internal state (counter value, FIFO depth, input
      // queue); the object may be able to fire again next cycle even if
      // no net event points back at it.
      enqueue_next(o);
    }
  }
  // Worklist depth = entries drained this cycle (seeds plus same-cycle
  // refill wakes) — the event scheduler's own work metric.
  if (tracer_ != nullptr && tracer_->tracing()) {
    tracer_->on_worklist(ready_.size());
  }
  ready_.clear();
  // Commit only the nets touched this cycle.  A committed net whose
  // next commit would still change state (zero-sink nets dropping a
  // dangling token) stays listed for the next cycle.
  commit_scratch_.swap(dirty_nets_);
  for (Net* n : commit_scratch_) {
    n->clear_dirty();
    n->commit();
    if (Object* p = n->producer()) enqueue_next(p);
    for (Object* w : n->sink_waiters()) {
      if (w != nullptr) enqueue_next(w);
    }
    if (n->commit_pending() && n->mark_dirty()) dirty_nets_.push_back(n);
  }
  commit_scratch_.clear();
  ++cycle_;
  total_fires_ += fires;
  return fires;
}

void Simulator::enqueue_next(Object* o) {
  if (o->sched_queued()) return;
  o->set_sched_queued(true);
  next_ready_.push_back(o);
}

void Simulator::net_consumed(Net& net, int sink) {
  if (net.mark_dirty()) dirty_nets_.push_back(&net);
  if (compiled_ != nullptr) compiled_->record_consume(net, sink);
}

void Simulator::net_staged(Net& net) {
  if (net.mark_dirty()) dirty_nets_.push_back(&net);
  if (compiled_ != nullptr) compiled_->record_stage(net);
}

void Simulator::net_freed(Net& net) {
  // Same-cycle refill (combinational handshake): the producer may stage
  // a new token in the very cycle the last sink consumed the old one.
  Object* p = net.producer();
  if (p == nullptr || p->fired_in(cycle_) || p->sched_queued()) return;
  p->set_sched_queued(true);
  ready_.push_back(p);
}

void Simulator::object_woken(Object& obj) {
  // External feed: a live epoch's input-queue assumptions may be stale.
  if (compiled_ != nullptr) compiled_->on_external_wake();
  enqueue_next(&obj);
}

void Simulator::install_faults(FaultInjector* injector) {
  // Injected events mutate state a compiled epoch assumes invariant.
  if (compiled_ != nullptr) compiled_->deoptimize();
  injector_ = injector;
}

void Simulator::run(long long n) {
  for (long long i = 0; i < n; ++i) step();
}

StallReport Simulator::run_until_quiescent(long long max_cycles) {
  for (long long i = 0; i < max_cycles; ++i) {
    if (step() == 0 &&
        (injector_ == nullptr || !injector_->events_pending())) {
      StallReport r = diagnose();
      r.cycles = i + 1;
      r.termination = r.tokens_in_flight == 0 ? RunTermination::kCompleted
                                              : RunTermination::kDeadlocked;
      return r;
    }
  }
  StallReport r = diagnose();
  r.cycles = max_cycles;
  r.termination = RunTermination::kMaxCycles;
  return r;
}

std::string net_label(const Net* net) {
  const Object* p = net == nullptr ? nullptr : net->producer();
  if (p == nullptr) return "<undriven net>";
  for (int j = 0; j < kMaxOut; ++j) {
    if (p->out_net(j) == net) {
      return "'" + p->name() + ".out" + std::to_string(j) + "'";
    }
  }
  return "'" + p->name() + ".out?'";
}

StallReport Simulator::diagnose() const {
  // Diagnosis reads raw Net state; materialize it from any live epoch
  // first (logical const: observable simulation state is unchanged).
  if (compiled_ != nullptr) compiled_->deoptimize();
  StallReport r;
  // Nets bound to blocked objects, in first-seen order (deduplicated);
  // ranked into r.hot_nets below when a tracer can supply counters.
  std::vector<const Net*> stall_nets;
  std::unordered_set<const Net*> stall_seen;
  const auto note_net = [&](const Net* n) {
    if (n != nullptr && stall_seen.insert(n).second) stall_nets.push_back(n);
  };
  for (const auto& [id, g] : groups_) {
    (void)id;
    for (const auto& n : g.nets) {
      r.tokens_in_flight += n->occupied() ? 1 : 0;
    }
    for (const auto& o : g.objects) {
      r.tokens_in_flight += static_cast<long long>(o->external_pending());
      // An object is reported as blocked when work waits at its door —
      // a consumable token on some bound input, or externally queued
      // samples — while some other port prevents the fire.
      bool has_work = o->external_pending() > 0;
      for (int i = 0; i < kMaxIn && !has_work; ++i) {
        const Net* net = o->in_net(i);
        has_work = net != nullptr && net->can_read(o->in_sink(i));
      }
      if (!has_work) continue;
      BlockedObject b;
      b.name = o->name();
      b.last_fire_cycle = o->last_fire_cycle();
      for (int i = 0; i < kMaxIn; ++i) {
        if (o->in_bound(i) && !o->in_ready(i)) {
          b.waiting_on.push_back("in" + std::to_string(i) + " empty (net " +
                                 net_label(o->in_net(i)) + ")");
        }
      }
      for (int j = 0; j < kMaxOut; ++j) {
        if (o->out_bound(j) && !o->out_ready(j)) {
          b.waiting_on.push_back("out" + std::to_string(j) + " full (net " +
                                 net_label(o->out_net(j)) +
                                 ", sink not consuming)");
        }
      }
      if (b.waiting_on.empty()) {
        b.waiting_on.push_back("firing rule not satisfied (internal state)");
      }
      // Every net touching a blocked object is stall-involved: the
      // empty ones it waits on, the full ones it cannot write, and the
      // occupied ones feeding it (where the stranded tokens sit).
      for (int i = 0; i < kMaxIn; ++i) note_net(o->in_net(i));
      for (int j = 0; j < kMaxOut; ++j) note_net(o->out_net(j));
      r.blocked.push_back(std::move(b));
    }
  }
  if (tracer_ != nullptr) {
    for (const Net* n : stall_nets) {
      const NetCounters* c = tracer_->net_counters(n);
      if (c == nullptr) continue;
      r.hot_nets.push_back({net_label(n), c->occupied_cycles,
                            c->backpressure_cycles, c->tokens});
    }
    std::stable_sort(r.hot_nets.begin(), r.hot_nets.end(),
                     [](const NetHotspot& a, const NetHotspot& b) {
                       if (a.backpressure_cycles != b.backpressure_cycles) {
                         return a.backpressure_cycles > b.backpressure_cycles;
                       }
                       return a.occupied_cycles > b.occupied_cycles;
                     });
    if (r.hot_nets.size() > static_cast<std::size_t>(kMaxHotNets)) {
      r.hot_nets.resize(static_cast<std::size_t>(kMaxHotNets));
    }
  }
  return r;
}

Object* Simulator::find(GroupId id, const std::string& name) {
  const auto it = groups_.find(id);
  if (it == groups_.end()) return nullptr;
  const auto oit = it->second.by_name.find(name);
  return oit == it->second.by_name.end() ? nullptr : oit->second;
}

std::vector<ObjectStats> Simulator::stats(GroupId id) const {
  std::vector<ObjectStats> out;
  const auto it = groups_.find(id);
  if (it == groups_.end()) return out;
  out.reserve(it->second.objects.size());
  for (const auto& o : it->second.objects) {
    out.push_back({o->name(), o->fire_count()});
  }
  return out;
}

std::string Simulator::utilization_report(GroupId id, long long cycles) const {
  if (cycles < 0) cycles = cycle_;
  std::string out;
  char line[128];
  for (const auto& s : stats(id)) {
    const double u = cycles > 0 ? static_cast<double>(s.fires) /
                                      static_cast<double>(cycles)
                                : 0.0;
    std::snprintf(line, sizeof(line), "%-16s %10lld fires  %5.1f %%\n",
                  s.name.c_str(), s.fires, 100.0 * u);
    out += line;
  }
  return out;
}

int Simulator::object_count() const {
  int n = 0;
  for (const auto& [id, g] : groups_) {
    (void)id;
    n += static_cast<int>(g.objects.size());
  }
  return n;
}

}  // namespace rsp::xpp

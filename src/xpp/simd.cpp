// Baseline SIMD backend + runtime dispatch.
//
// The lane loops in simd_lanes.inc compile here with the project's
// default flags, so this TU's kernels use whatever the baseline ISA
// offers (SSE2 is part of the x86-64 ABI; NEON of aarch64).  An AVX2
// variant of the same loops lives in simd_avx2.cpp; dispatch() picks
// it at startup when the compiler could build it, the CPU reports the
// feature, and neither the RSP_SIMD=off build option nor the RSP_SIMD
// environment variable vetoes it.
#include "src/xpp/simd.hpp"

#include <cstdlib>
#include <cstring>

#include "src/common/cplx.hpp"
#include "src/common/word.hpp"

namespace rsp::xpp::simd {

namespace baseline {
#include "src/xpp/simd_lanes.inc"
}  // namespace baseline

namespace detail {
/// Defined in simd_avx2.cpp; nullptr when that TU could not be built
/// with AVX2 (unsupported compiler flag or RSP_SIMD=off).
const Kernels* avx2_kernels();
}  // namespace detail

namespace {

struct Backend {
  const Kernels* k = nullptr;
  const char* name = "scalar";
  int width = 1;
};

Backend pick() {
  Backend b;
  b.k = &baseline::kTable;
#if defined(RSP_SIMD_OFF)
  b.name = "scalar";
  b.width = 1;
  return b;
#else
  const char* env = std::getenv("RSP_SIMD");
  const bool veto = env != nullptr && std::strcmp(env, "off") == 0;
#if defined(__x86_64__) || defined(__i386__)
  if (!veto && detail::avx2_kernels() != nullptr &&
      __builtin_cpu_supports("avx2")) {
    b.k = detail::avx2_kernels();
    b.name = "avx2";
    b.width = 8;
    return b;
  }
  b.name = "sse2";
  b.width = 4;
#elif defined(__ARM_NEON) || defined(__aarch64__)
  b.name = "neon";
  b.width = 4;
#else
  b.name = "scalar";
  b.width = 1;
#endif
  if (veto) {
    b.name = "scalar";
    b.width = 1;
  }
  return b;
#endif
}

const Backend& backend() {
  static const Backend b = pick();
  return b;
}

}  // namespace

const Kernels& kernels() { return *backend().k; }

const Kernels& generic_kernels() { return baseline::kTable; }

const char* isa_name() { return backend().name; }

int native_lane_width() { return backend().width; }

}  // namespace rsp::xpp::simd

// Convenience harness: load a configuration, stream inputs, run the
// clock until the expected outputs are produced (or the array goes
// quiescent), collect outputs, release the configuration.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/xpp/manager.hpp"

namespace rsp::xpp {

struct RunResult {
  std::map<std::string, std::vector<Word>> outputs;
  long long cycles = 0;        ///< execution cycles (excl. configuration)
  long long load_cycles = 0;   ///< configuration-write cycles
  LoadedConfig info;
};

/// Run @p cfg on @p mgr with the given input streams.  @p expected maps
/// output object names to the number of words to wait for; the run
/// stops early once all are reached, and throws ConfigError if the
/// array goes idle or @p max_cycles elapse first.
[[nodiscard]] RunResult run_config(
    ConfigurationManager& mgr, const Configuration& cfg,
    const std::map<std::string, std::vector<Word>>& inputs,
    const std::map<std::string, std::size_t>& expected,
    long long max_cycles = 1'000'000);

}  // namespace rsp::xpp

#include "src/xpp/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>

#include "src/xpp/sim.hpp"

namespace rsp::xpp {

const char* config_span_kind_name(ConfigSpan::Kind k) {
  switch (k) {
    case ConfigSpan::Kind::kLoad:     return "load";
    case ConfigSpan::Kind::kResident: return "resident";
    case ConfigSpan::Kind::kRelease:  return "release";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Tracer: collection
// ---------------------------------------------------------------------------

void Tracer::on_attach(long long cycle) {
  begin_cycle_ = cycle;
  last_cycle_ = cycle;
  interval_cycles_ = 0;
  interval_row_fires_.clear();
  wl_interval_peak_ = 0;
  wl_interval_total_ = 0;
}

void Tracer::on_group_added(int group,
                            const std::vector<std::unique_ptr<Object>>& objects,
                            const std::vector<std::unique_ptr<Net>>& nets) {
  for (const auto& o : objects) {
    PaeCounters c;
    c.seq = seq_++;
    c.group = group;
    c.name = o->name();
    c.kind = o->kind();
    objs_.emplace(o.get(), std::move(c));
  }
  for (const auto& n : nets) {
    NetEntry e;
    e.c.seq = seq_++;
    e.c.group = group;
    e.c.label = net_label(n.get());
    e.last_generation = n->generation();
    nets_.emplace(n.get(), std::move(e));
  }
}

void Tracer::on_group_removed(
    const std::vector<std::unique_ptr<Object>>& objects,
    const std::vector<std::unique_ptr<Net>>& nets) {
  for (const auto& o : objects) {
    const auto it = objs_.find(o.get());
    if (it == objs_.end()) continue;
    retired_objs_.push_back(std::move(it->second));
    objs_.erase(it);
  }
  for (const auto& n : nets) {
    const auto it = nets_.find(n.get());
    if (it == nets_.end()) continue;
    retired_nets_.push_back(std::move(it->second.c));
    nets_.erase(it);
  }
}

void Tracer::object_fired(Object& obj, long long cycle) {
  (void)cycle;
  const auto it = objs_.find(&obj);
  if (it == objs_.end()) return;
  ++it->second.fires;
  ++interval_row_fires_[it->second.row];
}

void Tracer::on_worklist(std::size_t drained) {
  const auto d = static_cast<long long>(drained);
  saw_worklist_ = true;
  wl_interval_peak_ = std::max(wl_interval_peak_, d);
  wl_interval_total_ += d;
  wl_peak_ = std::max(wl_peak_, d);
}

void Tracer::on_cycle(const Simulator& sim) {
  // Just-executed cycle: step() advances the clock before sampling.
  const long long cyc = sim.cycle() - 1;
  last_cycle_ = sim.cycle();
  for (auto& [o, c] : objs_) {
    ++c.traced_cycles;
    if (o->fired_in(cyc)) continue;  // fire counted by object_fired()
    // Mirror diagnose()'s classification so per-cycle stall charging
    // and the end-of-run deadlock report tell the same story.
    bool has_work = o->external_pending() > 0;
    for (int i = 0; i < kMaxIn && !has_work; ++i) {
      const Net* net = o->in_net(i);
      has_work = net != nullptr && net->can_read(o->in_sink(i));
    }
    if (!has_work) {
      ++c.idle_cycles;
      continue;
    }
    bool in_stall = false;
    for (int i = 0; i < kMaxIn; ++i) {
      if (o->in_bound(i) && !o->in_ready(i)) {
        in_stall = true;
        break;
      }
    }
    if (in_stall) {
      ++c.stall_in_cycles;
      continue;
    }
    bool out_stall = false;
    for (int j = 0; j < kMaxOut; ++j) {
      if (o->out_bound(j) && !o->out_ready(j)) {
        out_stall = true;
        break;
      }
    }
    if (out_stall) {
      ++c.stall_out_cycles;
    } else {
      ++c.idle_cycles;  // firing rule unsatisfied for internal reasons
    }
  }
  for (auto& [n, e] : nets_) {
    ++e.c.traced_cycles;
    const std::uint64_t gen = n->generation();
    e.c.tokens += static_cast<long long>(gen - e.last_generation);
    if (n->occupied()) {
      ++e.c.occupied_cycles;
      // Same token as the previous boundary: it has now survived a full
      // cycle without being drained — the net refused its producer a
      // write slot for that whole cycle.
      if (gen == e.last_generation) ++e.c.backpressure_cycles;
    }
    e.last_generation = gen;
  }
  if (++interval_cycles_ >= opts_.sample_interval) {
    flush_interval(sim.cycle());
  }
}

void Tracer::flush_interval(long long cycle) {
  // unordered_map iteration order is not deterministic; emit rows
  // sorted so snapshots compare equal across schedulers and platforms.
  std::vector<std::pair<int, long long>> rows(interval_row_fires_.begin(),
                                              interval_row_fires_.end());
  std::sort(rows.begin(), rows.end());
  for (const auto& [row, fires] : rows) {
    row_samples_.push_back({cycle, row, fires});
  }
  interval_row_fires_.clear();
  if (saw_worklist_) {
    worklist_samples_.push_back({cycle, wl_interval_peak_, wl_interval_total_});
    wl_interval_peak_ = 0;
    wl_interval_total_ = 0;
  }
  interval_cycles_ = 0;
}

void Tracer::annotate_object(const Object* obj, int config, int row, int col) {
  const auto it = objs_.find(obj);
  if (it == objs_.end()) return;
  it->second.config = config;
  it->second.row = row;
  it->second.col = col;
}

void Tracer::annotate_group(int group, int config) {
  for (auto& [o, c] : objs_) {
    (void)o;
    if (c.group == group) c.config = config;
  }
  for (auto& [n, e] : nets_) {
    (void)n;
    if (e.c.group == group) e.c.config = config;
  }
}

void Tracer::on_config_load(int config, const std::string& name,
                            long long begin, long long end) {
  timeline_.push_back({ConfigSpan::Kind::kLoad, config, name, begin, end});
  timeline_.push_back({ConfigSpan::Kind::kResident, config, name, end, -1});
}

void Tracer::on_config_release(int config, const std::string& name,
                               long long begin, long long end) {
  // Close the matching open residency span.
  for (auto it = timeline_.rbegin(); it != timeline_.rend(); ++it) {
    if (it->kind == ConfigSpan::Kind::kResident && it->config == config &&
        it->end_cycle < 0) {
      it->end_cycle = begin;
      break;
    }
  }
  timeline_.push_back({ConfigSpan::Kind::kRelease, config, name, begin, end});
}

const NetCounters* Tracer::net_counters(const Net* net) const {
  const auto it = nets_.find(net);
  return it == nets_.end() ? nullptr : &it->second.c;
}

const PaeCounters* Tracer::object_counters(const Object* obj) const {
  const auto it = objs_.find(obj);
  return it == objs_.end() ? nullptr : &it->second;
}

PerfCounters Tracer::snapshot() const {
  PerfCounters pc;
  pc.begin_cycle = begin_cycle_;
  pc.end_cycle = last_cycle_;
  pc.paes = retired_objs_;
  for (const auto& [o, c] : objs_) {
    (void)o;
    pc.paes.push_back(c);
  }
  pc.nets = retired_nets_;
  for (const auto& [n, e] : nets_) {
    (void)n;
    pc.nets.push_back(e.c);
  }
  const auto by_seq = [](const auto& a, const auto& b) { return a.seq < b.seq; };
  std::sort(pc.paes.begin(), pc.paes.end(), by_seq);
  std::sort(pc.nets.begin(), pc.nets.end(), by_seq);
  pc.config_timeline = timeline_;
  pc.row_samples = row_samples_;
  pc.worklist_samples = worklist_samples_;
  pc.worklist_peak = wl_peak_;
  // Flush the residual partial interval without mutating the tracer.
  if (!interval_row_fires_.empty()) {
    std::vector<std::pair<int, long long>> rows(interval_row_fires_.begin(),
                                                interval_row_fires_.end());
    std::sort(rows.begin(), rows.end());
    for (const auto& [row, fires] : rows) {
      pc.row_samples.push_back({last_cycle_, row, fires});
    }
  }
  if (saw_worklist_ && (wl_interval_peak_ > 0 || wl_interval_total_ > 0)) {
    pc.worklist_samples.push_back(
        {last_cycle_, wl_interval_peak_, wl_interval_total_});
  }
  return pc;
}

void Tracer::export_to(const TraceSink& sink, std::ostream& os) const {
  sink.write(snapshot(), os);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// object names are identifiers, but the format must stay valid for
/// any input.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// One Chrome trace event.  All values are integers (cycle numbers and
/// counts), so the output is locale-independent by construction.
void emit_event(std::ostream& os, bool& first, const std::string& body) {
  if (!first) os << ",\n";
  first = false;
  os << "    {" << body << "}";
}

std::string kv(const char* key, long long v) {
  return std::string("\"") + key + "\":" + std::to_string(v);
}

std::string kv(const char* key, const std::string& v) {
  return std::string("\"") + key + "\":\"" + json_escape(v) + "\"";
}

}  // namespace

void ChromeTraceSink::write(const PerfCounters& pc, std::ostream& os) const {
  // pid 1: the array (one counter track per PAE row + worklist depth).
  // pid 2: configurations (one thread per ConfigId; X spans for
  // load / resident / release).  ts is the simulated cycle, rendered by
  // the viewer as microseconds.
  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  bool first = true;
  emit_event(os, first,
             kv("ph", std::string("M")) + "," + kv("pid", 1) + "," +
                 kv("name", std::string("process_name")) +
                 ",\"args\":{\"name\":\"XPP array\"}");
  emit_event(os, first,
             kv("ph", std::string("M")) + "," + kv("pid", 2) + "," +
                 kv("name", std::string("process_name")) +
                 ",\"args\":{\"name\":\"configurations\"}");
  // Row counter tracks.  Distinct counter *names* become distinct
  // tracks in Perfetto; row -1 collects unplaced (I/O) objects.
  for (const auto& s : pc.row_samples) {
    const std::string name =
        s.row < 0 ? "I/O fires" : "PAE row " + std::to_string(s.row) + " fires";
    emit_event(os, first,
               kv("ph", std::string("C")) + "," + kv("pid", 1) + "," +
                   kv("tid", static_cast<long long>(s.row + 2)) + "," +
                   kv("ts", s.cycle) + "," + kv("name", name) +
                   ",\"args\":{" + kv("fires", s.fires) + "}");
  }
  for (const auto& s : pc.worklist_samples) {
    emit_event(os, first,
               kv("ph", std::string("C")) + "," + kv("pid", 1) + "," +
                   kv("tid", 1) + "," + kv("ts", s.cycle) + "," +
                   kv("name", std::string("worklist drained")) +
                   ",\"args\":{" + kv("peak", s.peak) + "," +
                   kv("total", s.total) + "}");
  }
  // Configuration timeline.
  std::map<int, std::string> cfg_names;
  for (const auto& span : pc.config_timeline) {
    cfg_names.emplace(span.config, span.name);
  }
  for (const auto& [cfg, name] : cfg_names) {
    emit_event(os, first,
               kv("ph", std::string("M")) + "," + kv("pid", 2) + "," +
                   kv("tid", static_cast<long long>(cfg)) + "," +
                   kv("name", std::string("thread_name")) +
                   ",\"args\":{\"name\":\"cfg " + std::to_string(cfg) + " '" +
                   json_escape(name) + "'\"}");
  }
  for (const auto& span : pc.config_timeline) {
    const long long end =
        span.end_cycle < 0 ? std::max(pc.end_cycle, span.begin_cycle)
                           : span.end_cycle;
    emit_event(os, first,
               kv("ph", std::string("X")) + "," + kv("pid", 2) + "," +
                   kv("tid", static_cast<long long>(span.config)) + "," +
                   kv("ts", span.begin_cycle) + "," +
                   kv("dur", end - span.begin_cycle) + "," +
                   kv("name", std::string(config_span_kind_name(span.kind))) +
                   ",\"args\":{" + kv("config", span.name) + "}");
  }
  os << "\n  ]\n}\n";
}

void CsvTraceSink::write(const PerfCounters& pc, std::ostream& os) const {
  os << "type,seq,group,config,name,kind,row,col,traced_cycles,fires,"
        "stall_in_cycles,stall_out_cycles,idle_cycles,occupied_cycles,"
        "backpressure_cycles,tokens\n";
  for (const auto& p : pc.paes) {
    os << "object," << p.seq << ',' << p.group << ',' << p.config << ",\""
       << p.name << "\"," << object_kind_name(p.kind) << ',' << p.row << ','
       << p.col << ',' << p.traced_cycles << ',' << p.fires << ','
       << p.stall_in_cycles << ',' << p.stall_out_cycles << ','
       << p.idle_cycles << ",,,\n";
  }
  for (const auto& n : pc.nets) {
    os << "net," << n.seq << ',' << n.group << ',' << n.config << ",\""
       << n.label << "\",net,,," << n.traced_cycles << ",,,,,"
       << n.occupied_cycles << ',' << n.backpressure_cycles << ','
       << n.tokens << '\n';
  }
}

}  // namespace rsp::xpp

// Physical array geometry, placement and routing-resource accounting.
//
// XPP-64A geometry (paper, Section 4): "an 8x8 array of computing
// elements called ALU Processing Array Elements (ALU-PAEs) with a row
// of 8 storage elements called RAM-PAEs on either side.  Each PAE also
// includes individually configurable vertical and horizontal routing
// resources."  We model the RAM-PAEs as the leftmost and rightmost
// columns of a rows x (alu_cols + 2) grid and account routing as
// horizontal/vertical track usage along L-shaped paths.
#pragma once

#include <string>
#include <vector>

#include "src/xpp/configuration.hpp"
#include "src/xpp/types.hpp"

namespace rsp::xpp {

struct ArrayGeometry {
  int rows = 8;
  int alu_cols = 8;
  int io_channels = 8;        ///< 4 dual-channel I/O ports
  // Routing capacity per cell.  The XPP routes over segmented busses
  // with register forwarding; our router is a naive single-L-path
  // model, so the per-cell track budget is set generously to avoid
  // artificial congestion (real congestion still shows on tiny
  // geometries and is unit-tested with reduced budgets).
  int h_tracks_per_cell = 24;
  int v_tracks_per_cell = 24;

  [[nodiscard]] int cols() const { return alu_cols + 2; }
  [[nodiscard]] bool is_ram_col(int col) const {
    return col == 0 || col == alu_cols + 1;
  }
  [[nodiscard]] int alu_count() const { return rows * alu_cols; }
  [[nodiscard]] int ram_count() const { return rows * 2; }
};

/// Identifier of a loaded configuration.
using ConfigId = int;
inline constexpr ConfigId kNoConfig = -1;

/// Outcome of placing one configuration.
struct Placement {
  std::vector<Coord> object_cell;   ///< per object; {-1,-1} for I/O objects
  std::vector<int> io_channel;      ///< per object; -1 for array objects
  int routing_segments = 0;         ///< total track segments consumed
};

/// Tracks which configuration owns each PAE, each I/O channel and each
/// routing track — the array's resource-management state.
class ResourceMap {
 public:
  explicit ResourceMap(ArrayGeometry geom);

  const ArrayGeometry& geometry() const { return geom_; }

  /// Place @p cfg for owner @p id.  Honours explicit placements,
  /// auto-places the rest (first fit), and routes every connection.
  /// Throws ConfigError if any resource is unavailable — loaded
  /// configurations can never be overwritten.
  Placement place(const Configuration& cfg, ConfigId id);

  /// Release every resource owned by @p id.
  void release(ConfigId id);

  /// Owner of a cell (kNoConfig if free).
  [[nodiscard]] ConfigId owner(Coord at) const;

  [[nodiscard]] int free_alu_cells() const;
  [[nodiscard]] int free_ram_cells() const;
  [[nodiscard]] int free_io_channels() const;
  [[nodiscard]] int used_alu_cells() const { return geom_.alu_count() - free_alu_cells(); }
  [[nodiscard]] int used_ram_cells() const { return geom_.ram_count() - free_ram_cells(); }

  /// Total routing segments currently in use.
  [[nodiscard]] int routing_in_use() const;

  /// High-water marks since the last reset_peaks() (used by the
  /// time-slicing experiments to compare against a non-shared design).
  [[nodiscard]] int peak_alu_cells() const { return peak_alu_; }
  [[nodiscard]] int peak_ram_cells() const { return peak_ram_; }
  void reset_peaks() {
    peak_alu_ = used_alu_cells();
    peak_ram_ = used_ram_cells();
  }

  /// ASCII occupancy map (one char per cell) for reports.
  [[nodiscard]] std::string occupancy_map() const;

 private:
  /// Snapshot restore (snapshot.hpp) rebuilds the occupancy arrays
  /// verbatim instead of replaying place(): after interleaved
  /// load/release sequences the first-fit allocator would not reproduce
  /// the same channel/track assignment from the surviving
  /// configurations alone.
  friend class SnapshotAccess;

  [[nodiscard]] int idx(Coord at) const { return at.row * geom_.cols() + at.col; }
  [[nodiscard]] bool cell_free(Coord at) const;
  Coord auto_place(ObjectKind kind, ConfigId id);
  int route(Coord src, Coord dst, ConfigId id);

  ArrayGeometry geom_;
  std::vector<ConfigId> cell_owner_;       // rows*cols
  std::vector<ConfigId> io_owner_;         // io_channels
  std::vector<int> h_used_;                // per cell
  std::vector<int> v_used_;                // per cell
  int peak_alu_ = 0;
  int peak_ram_ = 0;
  struct Segment { int cell; bool horizontal; ConfigId owner; };
  std::vector<Segment> segments_;
};

}  // namespace rsp::xpp

// Portable SIMD substrate for batched cross-instance epoch replay.
//
// The batched replay engine (src/xpp/batch.hpp) lays N terminals'
// net-slot values out as struct-of-instance-arrays and executes each
// compiled op across all lanes at once.  This header is the only
// ISA-facing surface: a table of lane-loop kernels covering the
// vector-friendly op kinds (generic ALU, counter, accumulators, guard
// mask evaluation), selected once at startup.
//
// Dispatch strategy: the kernels are written as plain lane loops over
// the exact 24-bit helpers in src/common/word.hpp / cplx.hpp — the
// same constexpr arithmetic the scalar interpreter and the compiled
// scalar replay use — so bit-identity holds by construction on every
// backend.  The loops live in simd_lanes.inc and are compiled twice:
//
//   simd.cpp       baseline TU, built with the project flags.  The
//                  compiler auto-vectorizes the loops for the build's
//                  default ISA (SSE2 on x86-64, NEON on aarch64); with
//                  RSP_SIMD=off the table reports itself as "scalar".
//   simd_avx2.cpp  same loops compiled with -mavx2 when the compiler
//                  supports it; selected at runtime only when the CPU
//                  actually has AVX2 (and RSP_SIMD / the RSP_SIMD env
//                  var doesn't say "off").
//
// A kernel never touches simulator objects: callers gather per-lane
// state (net values, counter registers, accumulators) into contiguous
// arrays, run the kernels, and scatter back.
#pragma once

#include <cstdint>

#include "src/xpp/types.hpp"

namespace rsp::xpp::simd {

/// Hard cap on lanes per batch: guard results are 32-bit lane masks.
inline constexpr int kMaxBatchWidth = 32;

/// One generic-ALU op over n lanes.  Input pointers are never null
/// (the batch engine substitutes a zero column for unread ports, the
/// same "missing input reads as 0" rule as the scalar replay); a null
/// result pointer discards that output.
struct AluCall {
  Opcode op = Opcode::kNop;
  bool saturate = true;
  int shift = 0;
  const Word* table = nullptr;  ///< kSel4 routing table (4 entries)
  const Word* a = nullptr;
  const Word* b = nullptr;
  const Word* c = nullptr;
  Word* r0 = nullptr;
  Word* r1 = nullptr;
  int n = 0;
};

/// The lane-kernel table.  All state arrays are lane-indexed [0, n).
struct Kernels {
  void (*alu)(const AluCall& q) = nullptr;
  /// Counter replay: o0 gets the pre-update value, o1 the wrap flag;
  /// value/remaining are per-lane registers, params are shared (lanes
  /// in a batch run the same program, hence identical CounterParams).
  void (*counter)(Word* value, Word* remaining, Word start, Word step,
                  Word modulo, Word* o0, Word* o1, int n) = nullptr;
  /// kAccum with compile-pinned dump flag: accumulate always, then
  /// dump (stage + clear) when the flag says so.
  void (*accum)(Word* acc, const Word* in, bool saturate, bool dump,
                int shift, Word* o0, int n) = nullptr;
  /// kCAccum: packed-complex accumulate into 64-bit per-lane parts.
  void (*caccum)(long long* re, long long* im, const Word* in, bool dump,
                 int shift, Word* o0, int n) = nullptr;
  /// kValueTruth guard over n lanes: bit i set == lane i FAILED the
  /// guard ((v[i] != 0) != expect).
  std::uint32_t (*fail_mask)(const Word* v, bool expect, int n) = nullptr;
};

/// Best kernel table for this build + CPU (+ RSP_SIMD env override).
[[nodiscard]] const Kernels& kernels();

/// The baseline table, always available — differential tests compare
/// the dispatched table against this one lane by lane.
[[nodiscard]] const Kernels& generic_kernels();

/// Name of the selected backend: "avx2", "sse2", "neon" or "scalar".
[[nodiscard]] const char* isa_name();

/// Words per native vector register of the selected backend (8 for
/// AVX2, 4 for SSE2/NEON, 1 for scalar).  Batches wider than this
/// still work — the lane loops just run more vector iterations.
[[nodiscard]] int native_lane_width();

}  // namespace rsp::xpp::simd

// RAM-PAE: storage element of the array.
//
// "RAM-PAEs contain 512x24 bits of dual-ported SRAM and can be
// configured as standard RAM and FIFO modes" (paper, Section 4).  The
// FFT64 mapping additionally uses preloaded circular lookup FIFOs for
// read/write addresses and twiddle factors (Section 3.2), modelled here
// as kLut / kCircularLut.
#pragma once

#include <deque>
#include <vector>

#include "src/xpp/object.hpp"

namespace rsp::xpp {

/// Words per RAM-PAE.
inline constexpr int kRamWords = 512;

struct RamParams {
  RamMode mode = RamMode::kRam;
  int capacity = kRamWords;     ///< FIFO depth / RAM size in words
  std::vector<Word> preload;    ///< initial contents (FIFO/LUT/RAM)
};

/// Port map by mode:
///  kRam:          in0 = read addr -> out0 = data; in1 = write addr,
///                 in2 = write data (both ports may fire in one cycle).
///  kFifo:         in0 = push data; out0 = pop data.
///  kLut:          in0 = addr -> out0 = preload[addr].
///  kCircularLut:  out0 = replay of preload (optionally gated by in0).
class RamObject final : public Object {
 public:
  RamObject(std::string name, RamParams p);

  const RamParams& params() const { return p_; }

  /// FIFO occupancy (kFifo only).
  [[nodiscard]] int fifo_size() const { return static_cast<int>(fifo_.size()); }

  /// Fault hook: XOR @p mask into the stored word at @p addr of
  /// whichever backing store the mode uses (kRam: memory; kLut /
  /// kCircularLut: the preloaded SRAM contents; kFifo: the addr-th
  /// queued word).  Returns false when @p addr is out of range.
  bool corrupt_word(int addr, Word mask);

  /// Read one stored word without firing (diagnostics / tests).
  [[nodiscard]] Word peek_word(int addr) const;

 protected:
  bool do_fire() override;

 private:
  friend class CompiledProgram;  ///< direct mem/FIFO/replay-pos access
  friend class BatchedReplayEngine;  ///< per-lane mem/FIFO/replay-pos
  friend class CanonicalProgram;     ///< preload/shape capture
  friend class SnapshotAccess;  ///< bit-exact save/restore (snapshot.hpp)

  bool fire_ram();
  bool fire_fifo();
  bool fire_lut();
  bool fire_circular();

  RamParams p_;
  std::vector<Word> mem_;
  std::deque<Word> fifo_;
  std::size_t replay_pos_ = 0;
};

}  // namespace rsp::xpp

#include "src/xpp/nml.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "src/xpp/builder.hpp"

namespace rsp::xpp {
namespace {

const std::map<std::string, Opcode>& opcode_table() {
  static const std::map<std::string, Opcode> table = [] {
    std::map<std::string, Opcode> t;
    for (int i = 0; i <= static_cast<int>(Opcode::kCAccum); ++i) {
      const auto op = static_cast<Opcode>(i);
      t.emplace(opcode_name(op), op);
    }
    return t;
  }();
  return table;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) {
    if (tok[0] == '#') break;
    out.push_back(tok);
  }
  return out;
}

Word parse_word(const std::string& s) {
  std::size_t pos = 0;
  const long v = std::stol(s, &pos, 0);
  if (pos != s.size()) throw ConfigError("nml: bad number '" + s + "'");
  return static_cast<Word>(v);
}

std::vector<Word> parse_list(const std::string& s) {
  std::vector<Word> out;
  std::string cur;
  for (const char ch : s + ",") {
    if (ch == ',') {
      if (!cur.empty()) out.push_back(parse_word(cur));
      cur.clear();
    } else {
      cur += ch;
    }
  }
  return out;
}

/// Split "name.inK" / "name.outK" into (name, is_out, K).
struct PortName {
  std::string obj;
  bool is_out = false;
  int port = 0;
};

PortName parse_port(const std::string& s) {
  const auto dot = s.find('.');
  if (dot == std::string::npos) throw ConfigError("nml: bad port '" + s + "'");
  PortName p;
  p.obj = s.substr(0, dot);
  const std::string rest = s.substr(dot + 1);
  if (rest.rfind("out", 0) == 0) {
    p.is_out = true;
    p.port = rest.size() > 3 ? parse_word(rest.substr(3)) : 0;
  } else if (rest.rfind("in", 0) == 0) {
    p.is_out = false;
    p.port = rest.size() > 2 ? parse_word(rest.substr(2)) : 0;
  } else {
    throw ConfigError("nml: bad port '" + s + "'");
  }
  return p;
}

/// key=value option lookup.
std::optional<std::string> option(const std::vector<std::string>& toks,
                                  std::size_t from, const std::string& key) {
  for (std::size_t i = from; i < toks.size(); ++i) {
    if (toks[i].rfind(key + "=", 0) == 0) {
      return toks[i].substr(key.size() + 1);
    }
  }
  return std::nullopt;
}

bool flag(const std::vector<std::string>& toks, std::size_t from,
          const std::string& key) {
  for (std::size_t i = from; i < toks.size(); ++i) {
    if (toks[i] == key) return true;
  }
  return false;
}

}  // namespace

Opcode opcode_from_name(const std::string& name) {
  const auto it = opcode_table().find(name);
  if (it == opcode_table().end()) {
    throw ConfigError("nml: unknown opcode '" + name + "'");
  }
  return it->second;
}

Configuration parse_nml(const std::string& text) {
  std::optional<ConfigBuilder> builder;
  std::map<std::string, ObjHandle> objs;

  const auto lookup = [&](const std::string& name) -> ObjHandle {
    const auto it = objs.find(name);
    if (it == objs.end()) throw ConfigError("nml: unknown object '" + name + "'");
    return it->second;
  };

  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const auto toks = tokenize(line);
    if (toks.empty()) continue;
    const std::string& cmd = toks[0];

    if (cmd == "config") {
      if (toks.size() < 2) throw ConfigError("nml: config needs a name");
      builder.emplace(toks[1]);
      continue;
    }
    if (!builder) throw ConfigError("nml: missing 'config' header");

    if (cmd == "obj") {
      if (toks.size() < 3) throw ConfigError("nml: obj needs name and kind");
      const std::string& name = toks[1];
      const std::string& kind = toks[2];
      if (kind == "INPUT") {
        objs.emplace(name, builder->input(name));
      } else if (kind == "CINPUT") {
        objs.emplace(name, builder->control_input(name));
      } else if (kind == "OUTPUT") {
        objs.emplace(name, builder->output(name));
      } else if (kind == "ALU") {
        if (toks.size() < 4) throw ConfigError("nml: ALU needs an opcode");
        AluParams p;
        p.op = opcode_from_name(toks[3]);
        if (const auto s = option(toks, 4, "shift")) p.shift = parse_word(*s);
        if (flag(toks, 4, "wrap")) p.saturate = false;
        if (const auto t = option(toks, 4, "table")) {
          const auto vals = parse_list(*t);
          if (vals.size() != 4) throw ConfigError("nml: table needs 4 values");
          std::copy(vals.begin(), vals.end(), p.table.begin());
        }
        objs.emplace(name, builder->alu(name, p.op, p));
      } else if (kind == "COUNTER") {
        CounterParams p;
        if (const auto s = option(toks, 3, "start")) p.start = parse_word(*s);
        if (const auto s = option(toks, 3, "step")) p.step = parse_word(*s);
        if (const auto s = option(toks, 3, "mod")) p.modulo = parse_word(*s);
        objs.emplace(name, builder->counter(name, p));
      } else if (kind == "RAM") {
        if (toks.size() < 4) throw ConfigError("nml: RAM needs a mode");
        RamParams p;
        const std::string& mode = toks[3];
        if (mode == "RAM") {
          p.mode = RamMode::kRam;
        } else if (mode == "FIFO") {
          p.mode = RamMode::kFifo;
        } else if (mode == "LUT") {
          p.mode = RamMode::kLut;
        } else if (mode == "CLUT") {
          p.mode = RamMode::kCircularLut;
        } else {
          throw ConfigError("nml: unknown RAM mode '" + mode + "'");
        }
        if (const auto s = option(toks, 4, "cap")) p.capacity = parse_word(*s);
        if (const auto s = option(toks, 4, "preload")) p.preload = parse_list(*s);
        objs.emplace(name, builder->ram(name, std::move(p)));
      } else {
        throw ConfigError("nml: unknown object kind '" + kind + "'");
      }
    } else if (cmd == "tie") {
      if (toks.size() < 3) throw ConfigError("nml: tie needs port and value");
      const PortName p = parse_port(toks[1]);
      if (p.is_out) throw ConfigError("nml: tie target must be an input");
      builder->tie(lookup(p.obj), p.port, parse_word(toks[2]));
    } else if (cmd == "conn") {
      if (toks.size() < 3) throw ConfigError("nml: conn needs two ports");
      const PortName s = parse_port(toks[1]);
      const PortName d = parse_port(toks[2]);
      if (!s.is_out || d.is_out) {
        throw ConfigError("nml: conn must go out-port -> in-port");
      }
      const PortRef src{lookup(s.obj).index, s.port};
      const PortRef dst{lookup(d.obj).index, d.port};
      if (const auto pl = option(toks, 3, "preload")) {
        builder->connect_preload(src, dst, parse_word(*pl));
      } else {
        builder->connect(src, dst);
      }
    } else if (cmd == "place") {
      if (toks.size() < 4) throw ConfigError("nml: place needs obj row col");
      builder->place(lookup(toks[1]),
                     {parse_word(toks[2]), parse_word(toks[3])});
    } else {
      throw ConfigError("nml: unknown directive '" + cmd + "'");
    }
  }
  if (!builder) throw ConfigError("nml: empty description");
  return builder->build();
}

Configuration parse_nml_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("nml: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_nml(buf.str());
}

std::string to_nml(const Configuration& cfg) {
  std::ostringstream os;
  os << "config " << cfg.name << "\n";
  for (const auto& o : cfg.objects) {
    os << "obj " << o.name << " ";
    switch (o.kind) {
      case ObjectKind::kInput:
        os << (o.control ? "CINPUT" : "INPUT");
        break;
      case ObjectKind::kOutput:
        os << "OUTPUT";
        break;
      case ObjectKind::kAlu: {
        os << "ALU " << opcode_name(o.alu.op);
        if (o.alu.shift != 0) os << " shift=" << o.alu.shift;
        if (!o.alu.saturate) os << " wrap";
        if (o.alu.op == Opcode::kSel4) {
          os << " table=" << o.alu.table[0] << "," << o.alu.table[1] << ","
             << o.alu.table[2] << "," << o.alu.table[3];
        }
        break;
      }
      case ObjectKind::kCounter:
        os << "COUNTER start=" << o.counter.start << " step=" << o.counter.step
           << " mod=" << o.counter.modulo;
        break;
      case ObjectKind::kRam: {
        os << "RAM ";
        switch (o.ram.mode) {
          case RamMode::kRam: os << "RAM"; break;
          case RamMode::kFifo: os << "FIFO"; break;
          case RamMode::kLut: os << "LUT"; break;
          case RamMode::kCircularLut: os << "CLUT"; break;
        }
        os << " cap=" << o.ram.capacity;
        if (!o.ram.preload.empty()) {
          os << " preload=";
          for (std::size_t i = 0; i < o.ram.preload.size(); ++i) {
            os << (i ? "," : "") << o.ram.preload[i];
          }
        }
        break;
      }
    }
    os << "\n";
    for (const auto& [port, value] : o.consts) {
      os << "tie " << o.name << ".in" << port << " " << value << "\n";
    }
    if (o.placement) {
      os << "place " << o.name << " " << o.placement->row << " "
         << o.placement->col << "\n";
    }
  }
  for (const auto& c : cfg.connections) {
    os << "conn " << cfg.objects[static_cast<std::size_t>(c.src.object)].name
       << ".out" << c.src.port << " "
       << cfg.objects[static_cast<std::size_t>(c.dst.object)].name << ".in"
       << c.dst.port;
    if (c.preload) os << " preload=" << *c.preload;
    os << "\n";
  }
  return os.str();
}

std::string to_dot(const Configuration& cfg) {
  std::ostringstream os;
  os << "digraph \"" << cfg.name << "\" {\n";
  os << "  rankdir=LR;\n  node [fontsize=10];\n";
  for (const auto& o : cfg.objects) {
    std::string label = o.name;
    std::string shape = "box";
    switch (o.kind) {
      case ObjectKind::kAlu:
        label += "\\n" + std::string(opcode_name(o.alu.op));
        if (o.alu.shift != 0) label += " >>" + std::to_string(o.alu.shift);
        shape = "box";
        break;
      case ObjectKind::kCounter:
        label += "\\nCOUNTER mod " + std::to_string(o.counter.modulo);
        shape = "oval";
        break;
      case ObjectKind::kRam: {
        const char* mode = o.ram.mode == RamMode::kRam
                               ? "RAM"
                               : (o.ram.mode == RamMode::kFifo
                                      ? "FIFO"
                                      : (o.ram.mode == RamMode::kLut
                                             ? "LUT"
                                             : "CLUT"));
        label += std::string("\\n") + mode + " x" +
                 std::to_string(o.ram.preload.empty()
                                    ? o.ram.capacity
                                    : static_cast<int>(o.ram.preload.size()));
        shape = "box3d";
        break;
      }
      case ObjectKind::kInput:
        label += o.control ? "\\n(control)" : "\\nINPUT";
        shape = "invhouse";
        break;
      case ObjectKind::kOutput:
        label += "\\nOUTPUT";
        shape = "house";
        break;
    }
    os << "  \"" << o.name << "\" [label=\"" << label << "\", shape="
       << shape << "];\n";
  }
  for (const auto& c : cfg.connections) {
    os << "  \"" << cfg.objects[static_cast<std::size_t>(c.src.object)].name
       << "\" -> \""
       << cfg.objects[static_cast<std::size_t>(c.dst.object)].name
       << "\" [label=\"o" << c.src.port << ">i" << c.dst.port << "\"";
    if (c.preload) os << ", style=dashed";
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace rsp::xpp

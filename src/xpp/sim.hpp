// Cycle-driven simulator of the array.
//
// "All resources in the XPP-64A execute completely synchronously.  A
// single clock domain is used for the entire device." (paper, Section 4)
// Each cycle every object may fire at most once; within a cycle the
// firing set is resolved to a fixed point so a full pipeline sustains
// one value per cycle per stage, and a freed net can be refilled in the
// same cycle (combinational handshake path).
//
// Three schedulers reach that fixed point (see DESIGN.md, "Simulator
// scheduling" and "Compiled epochs"):
//  - kScan: the legacy reference — rescan every object of every group
//    until a full pass makes no progress, then commit every net.
//  - kEventDriven (default): a worklist seeded with the objects whose
//    readiness may have changed (net commits, same-cycle slot frees,
//    external feeds, own firing) is drained to the same fixed point;
//    commits walk only the nets actually touched this cycle.
//  - kCompiled: runs event-driven while recording per-cycle fire/token
//    signatures; once the sequence proves periodic it compiles the
//    period into a flat epoch program (SoA net slots + branch-free op
//    list, src/xpp/compiled.hpp) and replays it until a boundary event
//    (external feed, reconfiguration, armed fault plan, guard mismatch)
//    deoptimizes back to the interpreter with bit-identical state.
// All three produce bit-identical fire counts, cycle counts and
// outputs; the scan variant is kept for differential testing.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/xpp/net.hpp"
#include "src/xpp/object.hpp"

namespace rsp::xpp {

class CompiledEngine;
class CompiledProgram;
class FaultInjector;
class Tracer;

/// Fire statistics for one object.
struct ObjectStats {
  std::string name;
  long long fires = 0;
};

/// Why run_until_quiescent stopped.
enum class RunTermination {
  kCompleted,   ///< zero fires and no tokens in flight anywhere
  kDeadlocked,  ///< zero fires but tokens pending on full/empty nets
  kMaxCycles,   ///< budget exhausted while objects were still firing
};

[[nodiscard]] const char* run_termination_name(RunTermination t);

/// Name a net by its producer port ("'cmul.out0'"); nets with no
/// producer back-pointer get a placeholder.  Shared by stall reports
/// and the fault-injection log.
[[nodiscard]] std::string net_label(const Net* net);

/// Cap on StallReport::hot_nets entries (a deadlock report is for
/// humans; past the first few hotspots the tail is noise).
inline constexpr int kMaxHotNets = 8;

/// Counter snapshot of one net involved in a stall, taken from an
/// attached Tracer (see src/xpp/trace.hpp).  Lets a deadlock report
/// name the *hottest* blocked nets — the ones whose tokens sat longest
/// — instead of just listing ports.
struct NetHotspot {
  std::string label;                 ///< producer-port label (net_label)
  long long occupied_cycles = 0;     ///< boundaries with a resident token
  long long backpressure_cycles = 0; ///< boundaries the token had aged >= 1 cycle
  long long tokens = 0;              ///< tokens latched over the traced window

  friend bool operator==(const NetHotspot&, const NetHotspot&) = default;
};

/// One object that holds or awaits tokens but cannot fire.
struct BlockedObject {
  std::string name;
  long long last_fire_cycle = -1;  ///< -1: never fired
  /// Human-readable port blockers, e.g. "in1 empty (net 'b.out0')" or
  /// "out0 full (sink not consuming)".
  std::vector<std::string> waiting_on;
};

/// Result of run_until_quiescent plus the failure diagnosis that turns
/// a silent hang into an actionable report: which objects are blocked,
/// which nets they wait on, and when each last fired.
struct StallReport {
  RunTermination termination = RunTermination::kCompleted;
  long long cycles = 0;            ///< cycles advanced by the call
  long long tokens_in_flight = 0;  ///< occupied nets + queued input words
  std::vector<BlockedObject> blocked;
  /// Nets of blocked objects ranked by backpressure (then occupancy),
  /// with their traced counters.  Filled only while a Tracer is
  /// attached (empty otherwise); capped at kMaxHotNets entries.
  std::vector<NetHotspot> hot_nets;

  [[nodiscard]] bool completed() const {
    return termination == RunTermination::kCompleted;
  }
  [[nodiscard]] bool deadlocked() const {
    return termination == RunTermination::kDeadlocked;
  }
  /// Multi-line report for logs / assertion messages.
  [[nodiscard]] std::string to_string() const;
};

/// Which algorithm resolves the per-cycle firing fixed point.
enum class SchedulerKind {
  kScan,         ///< legacy: rescan all objects until no progress
  kEventDriven,  ///< worklist seeded by token events (default)
  kCompiled,     ///< event-driven + periodic-steady-state epoch replay
};

class Simulator final : private SchedulerHooks {
 public:
  using GroupId = int;

  explicit Simulator(SchedulerKind kind = SchedulerKind::kEventDriven);
  ~Simulator();

  [[nodiscard]] SchedulerKind scheduler() const { return kind_; }

  /// Install a group of objects and nets (one loaded configuration).
  GroupId add_group(std::vector<std::unique_ptr<Object>> objects,
                    std::vector<std::unique_ptr<Net>> nets);

  /// Remove a group (partial reconfiguration: other groups keep state).
  void remove_group(GroupId id);

  /// Advance one clock cycle.  Returns the number of object fires.
  int step();

  /// Advance @p n cycles.
  void run(long long n);

  /// Run until a cycle with zero fires or until @p max_cycles elapse.
  /// The report distinguishes true completion (no tokens in flight)
  /// from a deadlock (tokens pending on full/empty nets, blocked
  /// objects named) from a budget timeout.  While a FaultInjector has
  /// scheduled events outstanding, zero-fire cycles do not end the run
  /// (a pipeline stalled behind a finite stuck-at window resumes).
  StallReport run_until_quiescent(long long max_cycles);

  /// Diagnose the current token state without advancing the clock:
  /// counts tokens in flight and names every object that holds or
  /// awaits tokens but cannot fire.  termination/cycles are left at
  /// their defaults for the caller to fill.
  [[nodiscard]] StallReport diagnose() const;

  /// Attach a fault injector (nullptr to detach).  The injector is
  /// invoked after every cycle's commit phase; with none installed the
  /// per-cycle cost is a single pointer compare.  Under kCompiled this
  /// deoptimizes any live epoch first: injected events mutate state the
  /// compiled program assumes invariant, so the engine refuses to arm
  /// while a plan has events pending (see src/xpp/compiled.hpp).
  void install_faults(FaultInjector* injector);
  [[nodiscard]] FaultInjector* fault_injector() const { return injector_; }

  /// Attach a tracer (nullptr to detach).  The tracer registers every
  /// group currently on the array and is notified of later add/remove;
  /// its boundary sampler runs after every cycle's commit phase, before
  /// fault injection.  With none attached the per-cycle cost is a
  /// single pointer compare (same pattern as install_faults).
  void attach_trace(Tracer* tracer);
  [[nodiscard]] Tracer* tracer() const { return tracer_; }

  [[nodiscard]] long long cycle() const { return cycle_; }
  [[nodiscard]] long long total_fires() const { return total_fires_; }

  /// Look up an object by name within a group (nullptr if absent).
  [[nodiscard]] Object* find(GroupId id, const std::string& name);

  /// Fire statistics of every object in a group.
  [[nodiscard]] std::vector<ObjectStats> stats(GroupId id) const;

  /// Formatted utilization report for a group: per-object fires and
  /// activity relative to @p cycles (defaults to the global cycle
  /// counter) — the per-PAE duty cycles behind the power model.
  [[nodiscard]] std::string utilization_report(GroupId id,
                                               long long cycles = -1) const;

  /// Live object count across all groups.
  [[nodiscard]] int object_count() const;

  /// The epoch-replay engine (nullptr unless kCompiled).  Exposed so
  /// tests and benchmarks can assert arming/replay actually happened
  /// (CompiledEngine::stats) — callers include src/xpp/compiled.hpp.
  [[nodiscard]] CompiledEngine* compiled_engine() const {
    return compiled_.get();
  }

 private:
  friend class FaultInjector;   ///< walks groups to resolve fault targets
  friend class CompiledEngine;  ///< drives step_event during recording
  friend class CompiledProgram; ///< packs/unpacks scheduler state
  friend class BatchedReplayEngine;  ///< cross-instance SoA lane replay
  friend class CanonicalProgram;     ///< canonical enumeration for binding
  friend class SnapshotAccess;  ///< bit-exact save/restore (snapshot.hpp)

  struct Group {
    std::vector<std::unique_ptr<Object>> objects;
    std::vector<std::unique_ptr<Net>> nets;
    std::unordered_map<std::string, Object*> by_name;
  };

  int step_scan();
  int step_event();
  /// kCompiled: replay one phase of an armed epoch, or interpret one
  /// cycle via step_event while feeding the periodicity detector.
  int step_compiled();

  /// Enqueue @p o for a readiness check next cycle (deduplicated).
  void enqueue_next(Object* o);

  // SchedulerHooks (event-driven and compiled modes).
  void net_consumed(Net& net, int sink) override;
  void net_staged(Net& net) override;
  void net_freed(Net& net) override;
  void object_woken(Object& obj) override;

  SchedulerKind kind_;
  std::unique_ptr<CompiledEngine> compiled_;  ///< kCompiled only
  FaultInjector* injector_ = nullptr;
  Tracer* tracer_ = nullptr;
  std::map<GroupId, Group> groups_;
  /// Flat iteration cache over groups_ (ascending GroupId), rebuilt on
  /// add_group/remove_group so the scan path avoids per-cycle map walks.
  std::vector<Group*> group_cache_;
  GroupId next_id_ = 0;
  long long cycle_ = 0;
  long long total_fires_ = 0;

  // Event-driven scheduler state.
  std::vector<Object*> ready_;       ///< current cycle's worklist
  std::vector<Object*> next_ready_;  ///< seeds for the next cycle
  std::vector<Net*> dirty_nets_;     ///< nets needing commit this cycle
  std::vector<Net*> commit_scratch_;
};

}  // namespace rsp::xpp

// Cycle-driven simulator of the array.
//
// "All resources in the XPP-64A execute completely synchronously.  A
// single clock domain is used for the entire device." (paper, Section 4)
// Each cycle every object may fire at most once; within a cycle the
// firing set is resolved to a fixed point so a full pipeline sustains
// one value per cycle per stage, and a freed net can be refilled in the
// same cycle (combinational handshake path).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/xpp/net.hpp"
#include "src/xpp/object.hpp"

namespace rsp::xpp {

/// Fire statistics for one object.
struct ObjectStats {
  std::string name;
  long long fires = 0;
};

class Simulator {
 public:
  using GroupId = int;

  /// Install a group of objects and nets (one loaded configuration).
  GroupId add_group(std::vector<std::unique_ptr<Object>> objects,
                    std::vector<std::unique_ptr<Net>> nets);

  /// Remove a group (partial reconfiguration: other groups keep state).
  void remove_group(GroupId id);

  /// Advance one clock cycle.  Returns the number of object fires.
  int step();

  /// Advance @p n cycles.
  void run(long long n);

  /// Run until a cycle with zero fires or until @p max_cycles elapse.
  /// Returns the number of cycles advanced.
  long long run_until_quiescent(long long max_cycles);

  [[nodiscard]] long long cycle() const { return cycle_; }
  [[nodiscard]] long long total_fires() const { return total_fires_; }

  /// Look up an object by name within a group (nullptr if absent).
  [[nodiscard]] Object* find(GroupId id, const std::string& name);

  /// Fire statistics of every object in a group.
  [[nodiscard]] std::vector<ObjectStats> stats(GroupId id) const;

  /// Formatted utilization report for a group: per-object fires and
  /// activity relative to @p cycles (defaults to the global cycle
  /// counter) — the per-PAE duty cycles behind the power model.
  [[nodiscard]] std::string utilization_report(GroupId id,
                                               long long cycles = -1) const;

  /// Live object count across all groups.
  [[nodiscard]] int object_count() const;

 private:
  struct Group {
    std::vector<std::unique_ptr<Object>> objects;
    std::vector<std::unique_ptr<Net>> nets;
  };

  std::map<GroupId, Group> groups_;
  GroupId next_id_ = 0;
  long long cycle_ = 0;
  long long total_fires_ = 0;
};

}  // namespace rsp::xpp

// Base class for configurable array objects (PAEs and I/O channels).
#pragma once

#include <array>
#include <optional>
#include <string>

#include "src/xpp/net.hpp"
#include "src/xpp/types.hpp"

namespace rsp::xpp {

/// Maximum data ports per object.  Three inputs cover every opcode
/// (select + two operands); two outputs cover demux/swap/unpack.
inline constexpr int kMaxIn = 3;
inline constexpr int kMaxOut = 2;

class Object;

/// Callback surface the event-driven Simulator hands to its objects.
/// Objects report the token events the worklist scheduler needs; a null
/// hook (scan scheduler, standalone objects) disables all reporting.
/// Consume and stage events are reported separately so the compiled
/// scheduler's period recorder can reconstruct each fire's exact token
/// traffic (see src/xpp/compiled.hpp); both mean "needs a commit".
class SchedulerHooks {
 public:
  virtual ~SchedulerHooks() = default;

  /// Sink @p sink consumed @p net's token this cycle (needs a commit).
  virtual void net_consumed(Net& net, int sink) = 0;

  /// A value was staged on @p net this cycle (needs a commit).
  virtual void net_staged(Net& net) = 0;

  /// @p net's write slot just freed combinationally (every sink has
  /// consumed): its producer may refill it in the same cycle.
  virtual void net_freed(Net& net) = 0;

  /// @p obj's readiness changed through a non-net channel (external
  /// feed, preload); recheck it on the next cycle.
  virtual void object_woken(Object& obj) = 0;
};

/// Callback surface for the observability layer (src/xpp/trace.hpp).
/// Mirrors the FaultInjector::armed() pattern: objects pay one pointer
/// compare plus one flag load per fire when a tracer is attached but
/// paused, and a single pointer compare when none is attached.
class TraceHooks {
 public:
  virtual ~TraceHooks() = default;

  /// Inline collection gate — checked before every callback.
  [[nodiscard]] bool tracing() const { return tracing_; }

  /// @p obj fired in @p cycle (called once per successful fire).
  virtual void object_fired(Object& obj, long long cycle) = 0;

 protected:
  bool tracing_ = true;
};

/// A configurable object instantiated on the array.  Subclasses define
/// the firing rule; the base class provides port bindings, the
/// once-per-cycle discipline and fire statistics.
class Object {
 public:
  Object(std::string name, ObjectKind kind)
      : name_(std::move(name)), kind_(kind) {}
  virtual ~Object() = default;

  Object(const Object&) = delete;
  Object& operator=(const Object&) = delete;

  const std::string& name() const { return name_; }
  ObjectKind kind() const { return kind_; }

  /// Bind input port @p i to @p net (registers this object as a sink).
  void bind_in(int i, Net& net) {
    in_[i].net = &net;
    in_[i].sink = net.add_sink(this);
  }

  /// Tie input port @p i to a constant (always ready, never consumed).
  void set_const(int i, Word v) { in_[i].cst = v; }

  /// Bind output port @p i to @p net (registers this object as its
  /// producer).
  void bind_out(int i, Net& net) {
    out_[i] = &net;
    net.set_producer(this);
  }

  [[nodiscard]] bool in_bound(int i) const {
    return in_[i].net != nullptr || in_[i].cst.has_value();
  }
  [[nodiscard]] bool out_bound(int i) const { return out_[i] != nullptr; }

  /// Attach (or detach, with nullptr) the scheduler callback surface.
  /// Called by the Simulator when the object joins a group.
  void attach_scheduler(SchedulerHooks* hooks) { sched_ = hooks; }

  /// Attach (or detach, with nullptr) the observability callback
  /// surface.  Called by Simulator::attach_trace / add_group.
  void attach_trace(TraceHooks* hooks) { trace_ = hooks; }

  /// Attempt to fire in cycle @p cycle (at most once per cycle).
  /// Returns true on fire.
  bool clock(long long cycle) {
    if (fired_cycle_ == cycle) return false;
    if (!do_fire()) return false;
    fired_cycle_ = cycle;
    ++fire_count_;
    if (trace_ != nullptr && trace_->tracing()) {
      trace_->object_fired(*this, cycle);
    }
    return true;
  }

  [[nodiscard]] bool fired_in(long long cycle) const {
    return fired_cycle_ == cycle;
  }
  [[nodiscard]] long long fire_count() const { return fire_count_; }

  /// Cycle of the most recent fire (-1 if the object never fired).
  [[nodiscard]] long long last_fire_cycle() const { return fired_cycle_; }

  /// Fault-injection hook: mark the object as having fired in @p cycle
  /// without running its firing rule or counting a fire — a stuck-at
  /// PAE holds its ports and simply does not fire.
  void force_fired(long long cycle) { fired_cycle_ = cycle; }

  /// Externally queued work not yet visible on any net (an input
  /// channel's pending samples).  Counts as tokens in flight for
  /// quiescence classification.
  [[nodiscard]] virtual std::size_t external_pending() const { return 0; }

  // -- read-only port introspection (stall reports, fault targeting) ------
  [[nodiscard]] const Net* in_net(int i) const { return in_[i].net; }
  [[nodiscard]] int in_sink(int i) const { return in_[i].sink; }
  [[nodiscard]] Net* out_net(int i) const { return out_[i]; }
  /// Constant tied to input @p i (empty when the port is a net or open).
  [[nodiscard]] std::optional<Word> in_const(int i) const {
    return in_[i].cst;
  }

  /// True if input @p i has a token (constants are always ready).
  [[nodiscard]] bool in_ready(int i) const {
    const auto& b = in_[i];
    if (b.cst) return true;
    return b.net != nullptr && b.net->can_read(b.sink);
  }

  /// True if output @p i can accept a token.  Unbound outputs accept
  /// and discard (dangling results are legal).
  [[nodiscard]] bool out_ready(int i) const {
    return out_[i] == nullptr || out_[i]->can_write();
  }

  /// Worklist-membership flag, owned by the scheduler (guards against
  /// duplicate enqueues).
  [[nodiscard]] bool sched_queued() const { return sched_queued_; }
  void set_sched_queued(bool q) { sched_queued_ = q; }

 protected:
  /// Subclass firing rule: check readiness, consume inputs, stage
  /// outputs.  Must be all-or-nothing.
  virtual bool do_fire() = 0;

  /// Peek input @p i without consuming.
  [[nodiscard]] Word in_peek(int i) const {
    const auto& b = in_[i];
    return b.cst ? *b.cst : b.net->peek();
  }

  /// Consume the token on input @p i (no-op for constants).
  void in_consume(int i) {
    auto& b = in_[i];
    if (b.cst || b.net == nullptr) return;
    b.net->consume(b.sink);
    if (sched_ != nullptr) {
      sched_->net_consumed(*b.net, b.sink);
      if (b.net->can_write()) sched_->net_freed(*b.net);
    }
  }

  /// Stage @p v on output @p i.
  void out_write(int i, Word v) {
    if (out_[i] == nullptr) return;
    out_[i]->stage(v);
    if (sched_ != nullptr) sched_->net_staged(*out_[i]);
  }

  /// Report an external readiness change (e.g. samples queued on an
  /// input channel) so the event-driven scheduler rechecks this object.
  void wake() {
    if (sched_ != nullptr) sched_->object_woken(*this);
  }

 private:
  /// The compiled epoch replayer (src/xpp/compiled.hpp) fires objects
  /// without going through clock()/do_fire(); it maintains fired_cycle_
  /// and fire_count_ directly so stats stay exact at every boundary.
  friend class CompiledProgram;
  friend class BatchedReplayEngine;
  friend class CanonicalProgram;
  friend class SnapshotAccess;  ///< bit-exact save/restore (snapshot.hpp)

  struct InBind {
    Net* net = nullptr;
    int sink = -1;
    std::optional<Word> cst;
  };

  std::string name_;
  ObjectKind kind_;
  std::array<InBind, kMaxIn> in_{};
  std::array<Net*, kMaxOut> out_{};
  long long fired_cycle_ = -1;
  long long fire_count_ = 0;
  SchedulerHooks* sched_ = nullptr;
  TraceHooks* trace_ = nullptr;
  bool sched_queued_ = false;
};

}  // namespace rsp::xpp

// Base class for configurable array objects (PAEs and I/O channels).
#pragma once

#include <array>
#include <optional>
#include <string>

#include "src/xpp/net.hpp"
#include "src/xpp/types.hpp"

namespace rsp::xpp {

/// Maximum data ports per object.  Three inputs cover every opcode
/// (select + two operands); two outputs cover demux/swap/unpack.
inline constexpr int kMaxIn = 3;
inline constexpr int kMaxOut = 2;

/// A configurable object instantiated on the array.  Subclasses define
/// the firing rule; the base class provides port bindings, the
/// once-per-cycle discipline and fire statistics.
class Object {
 public:
  Object(std::string name, ObjectKind kind)
      : name_(std::move(name)), kind_(kind) {}
  virtual ~Object() = default;

  Object(const Object&) = delete;
  Object& operator=(const Object&) = delete;

  const std::string& name() const { return name_; }
  ObjectKind kind() const { return kind_; }

  /// Bind input port @p i to @p net (registers this object as a sink).
  void bind_in(int i, Net& net) {
    in_[i].net = &net;
    in_[i].sink = net.add_sink();
  }

  /// Tie input port @p i to a constant (always ready, never consumed).
  void set_const(int i, Word v) { in_[i].cst = v; }

  /// Bind output port @p i to @p net.
  void bind_out(int i, Net& net) { out_[i] = &net; }

  [[nodiscard]] bool in_bound(int i) const {
    return in_[i].net != nullptr || in_[i].cst.has_value();
  }
  [[nodiscard]] bool out_bound(int i) const { return out_[i] != nullptr; }

  /// Reset the fired flag at the start of a cycle.
  void begin_cycle() { fired_ = false; }

  /// Attempt to fire (at most once per cycle).  Returns true on fire.
  bool clock() {
    if (fired_) return false;
    if (!do_fire()) return false;
    fired_ = true;
    ++fire_count_;
    return true;
  }

  [[nodiscard]] bool fired_this_cycle() const { return fired_; }
  [[nodiscard]] long long fire_count() const { return fire_count_; }

 protected:
  /// Subclass firing rule: check readiness, consume inputs, stage
  /// outputs.  Must be all-or-nothing.
  virtual bool do_fire() = 0;

  /// True if input @p i has a token (constants are always ready).
  [[nodiscard]] bool in_ready(int i) const {
    const auto& b = in_[i];
    if (b.cst) return true;
    return b.net != nullptr && b.net->can_read(b.sink);
  }

  /// Peek input @p i without consuming.
  [[nodiscard]] Word in_peek(int i) const {
    const auto& b = in_[i];
    return b.cst ? *b.cst : b.net->peek();
  }

  /// Consume the token on input @p i (no-op for constants).
  void in_consume(int i) {
    auto& b = in_[i];
    if (!b.cst && b.net) b.net->consume(b.sink);
  }

  /// True if output @p i can accept a token.  Unbound outputs accept
  /// and discard (dangling results are legal).
  [[nodiscard]] bool out_ready(int i) const {
    return out_[i] == nullptr || out_[i]->can_write();
  }

  /// Stage @p v on output @p i.
  void out_write(int i, Word v) {
    if (out_[i] != nullptr) out_[i]->stage(v);
  }

 private:
  struct InBind {
    Net* net = nullptr;
    int sink = -1;
    std::optional<Word> cst;
  };

  std::string name_;
  ObjectKind kind_;
  std::array<InBind, kMaxIn> in_{};
  std::array<Net*, kMaxOut> out_{};
  bool fired_ = false;
  long long fire_count_ = 0;
};

}  // namespace rsp::xpp

// Fundamental types of the XPP-class coarse-grained reconfigurable array.
//
// The model follows the device described in the paper (Section 4): an
// 8x8 array of ALU processing array elements (ALU-PAEs) flanked by a
// column of 8 RAM-PAEs on either side, a 24-bit datapath, four
// dual-channel I/O ports, a single synchronous clock domain and a
// token-oriented handshake protocol on every communication resource.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace rsp::xpp {

/// One 24-bit array word, stored sign-extended in an int32.
using Word = std::int32_t;

/// Position of a PAE in the array (row 0 at the top).
struct Coord {
  int row = 0;
  int col = 0;
  friend constexpr bool operator==(Coord, Coord) = default;
};

/// Classes of configurable objects.
enum class ObjectKind : std::uint8_t {
  kAlu,      ///< ALU-PAE (includes counters/comparators/muxes)
  kCounter,  ///< ALU-PAE configured as an address/sequence counter
  kRam,      ///< RAM-PAE (RAM / FIFO / LUT modes)
  kInput,    ///< external streaming input channel
  kOutput,   ///< external streaming output channel
};

/// Operating modes of a RAM-PAE (paper: "512x24 bits of dual-ported
/// SRAM ... configured as standard RAM and FIFO modes"; the FFT64 uses
/// preloaded circular lookup FIFOs for addresses and twiddles).
enum class RamMode : std::uint8_t {
  kRam,          ///< dual-ported: read port (addr->data) + write port
  kFifo,         ///< streaming FIFO, optionally preloaded
  kLut,          ///< read-only: addr -> preloaded data
  kCircularLut,  ///< free-running replay of the preloaded contents
};

/// ALU-PAE instruction set (word-granular DSP-style operations plus the
/// packed-complex operations the paper's figures use as units:
/// "Complex Multiplication", "Merge", "Swap", counters and comparators).
enum class Opcode : std::uint8_t {
  kNop,
  // -- word arithmetic ----------------------------------------------------
  kAdd, kSub, kMul, kMulShr, kNeg, kAbs, kMin, kMax,
  kAnd, kOr, kXor, kNot, kShl, kShr, kShrRound,
  // -- comparators (emit 0/1 event words) ---------------------------------
  kEq, kNe, kLt, kLe, kGt, kGe,
  // -- stream steering -----------------------------------------------------
  kMux,       ///< out0 = in0 ? in2 : in1
  kDemux,     ///< route in1 to out0 (in0==0) or out1 (in0!=0)
  kSwap,      ///< (out0,out1) = in0 ? (in2,in1) : (in1,in2)
  kMergeAlt,  ///< alternate in0,in1 -> out0
  kMergeSel,  ///< out0 = selected input (in0 chooses in1/in2), only it is consumed
  kGate,      ///< pass in0 to out0 iff in1 != 0 (both consumed)
  kDup,       ///< duplicate in0 to out0 and out1
  // -- packing -------------------------------------------------------------
  kPack,      ///< out0 = pack_iq(in0, in1)
  kUnpack,    ///< out0 = I(in0), out1 = Q(in0)
  kSel4,      ///< out0 = table[in0 & 3]  (packed-constant multiplexer, Fig. 5)
  // -- accumulation --------------------------------------------------------
  kAccum,     ///< acc += in0; when in1 != 0 emit acc>>shift and reset
  // -- packed complex (12+12) ----------------------------------------------
  kCAdd, kCSub, kCMulShr, kCConj, kCNeg,
  kCRotMj,    ///< multiply by -j (radix-4 butterfly rotation, Fig. 9)
  kCAccum,    ///< complex accumulate with dump event (despreader core)
};

/// Human-readable opcode name.
[[nodiscard]] const char* opcode_name(Opcode op);

/// Human-readable object-kind name (diagnostics).
[[nodiscard]] const char* object_kind_name(ObjectKind k);

/// Static description of an opcode used for configuration validation.
struct OpInfo {
  unsigned in_mask = 0;   ///< bit i set => input i must be bound (wire or const)
  unsigned out_mask = 0;  ///< bit i set => output i may be driven
  bool stateful = false;  ///< keeps internal state across fires
};

/// Lookup table entry for @p op.
[[nodiscard]] OpInfo op_info(Opcode op);

/// Error thrown for malformed or unplaceable configurations and for
/// protocol violations (e.g. loading onto occupied resources — the
/// paper's "configurations cannot be overwritten illegally").
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace rsp::xpp

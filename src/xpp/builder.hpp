// ConfigBuilder: the high-level programming front end for the array.
//
// Plays the role of the NML/XPP-VC design flow in the paper's Figure 3:
// configurations are authored in C++ against a typed API instead of a
// separate language, then handed to the ConfigurationManager.
#pragma once

#include <string>

#include "src/xpp/configuration.hpp"

namespace rsp::xpp {

/// Handle to an object under construction; produces port references.
struct ObjHandle {
  int index = -1;
  [[nodiscard]] constexpr PortRef in(int port = 0) const { return {index, port}; }
  [[nodiscard]] constexpr PortRef out(int port = 0) const { return {index, port}; }
};

class ConfigBuilder {
 public:
  explicit ConfigBuilder(std::string name) { cfg_.name = std::move(name); }

  /// Add an ALU-PAE running @p op.
  ObjHandle alu(const std::string& name, Opcode op, AluParams extra = {});

  /// Add an ALU-PAE with a post-shift (kMulShr/kShl/kShr/kAccum/...).
  ObjHandle alu_shift(const std::string& name, Opcode op, int shift);

  /// Add a kSel4 constant multiplexer with the given table.
  ObjHandle sel4(const std::string& name, const std::array<Word, 4>& table);

  /// Add a counter object.
  ObjHandle counter(const std::string& name, CounterParams p);

  /// Add a RAM-PAE.
  ObjHandle ram(const std::string& name, RamParams p);

  /// Add an external streaming input / output channel.
  ObjHandle input(const std::string& name);
  ObjHandle output(const std::string& name);

  /// Add a control-event input: tokens come from the configuration
  /// manager / sequencer, so no physical I/O channel is consumed.
  ObjHandle control_input(const std::string& name);

  /// Tie input @p port of @p obj to a constant.
  void tie(ObjHandle obj, int port, Word value);

  /// Connect two ports, optionally preloading an initial token.
  void connect(PortRef src, PortRef dst);
  void connect_preload(PortRef src, PortRef dst, Word initial);

  /// Request explicit placement for @p obj.
  void place(ObjHandle obj, Coord at);

  /// Finish; validates port bounds, duplicate names and required
  /// inputs, and stamps the CRC-32 configuration checksum verified at
  /// load time.
  [[nodiscard]] Configuration build() const;

  /// Number of objects added so far.
  [[nodiscard]] int size() const { return static_cast<int>(cfg_.objects.size()); }

 private:
  ObjHandle add(ObjectSpec spec);
  void validate() const;

  Configuration cfg_;
};

/// CRC-32 (IEEE 802.3 polynomial) over a canonical serialization of
/// @p cfg — every object spec, constant tie, connection and preload;
/// the checksum field itself is excluded.  Configurations describing
/// the same array behaviour hash equal; any single-bit corruption of a
/// stored configuration is detected at load.
[[nodiscard]] std::uint32_t config_crc32(const Configuration& cfg);

}  // namespace rsp::xpp

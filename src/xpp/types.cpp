#include "src/xpp/types.hpp"

namespace rsp::xpp {

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kNop:      return "NOP";
    case Opcode::kAdd:      return "ADD";
    case Opcode::kSub:      return "SUB";
    case Opcode::kMul:      return "MUL";
    case Opcode::kMulShr:   return "MULSHR";
    case Opcode::kNeg:      return "NEG";
    case Opcode::kAbs:      return "ABS";
    case Opcode::kMin:      return "MIN";
    case Opcode::kMax:      return "MAX";
    case Opcode::kAnd:      return "AND";
    case Opcode::kOr:       return "OR";
    case Opcode::kXor:      return "XOR";
    case Opcode::kNot:      return "NOT";
    case Opcode::kShl:      return "SHL";
    case Opcode::kShr:      return "SHR";
    case Opcode::kShrRound: return "SHRR";
    case Opcode::kEq:       return "EQ";
    case Opcode::kNe:       return "NE";
    case Opcode::kLt:       return "LT";
    case Opcode::kLe:       return "LE";
    case Opcode::kGt:       return "GT";
    case Opcode::kGe:       return "GE";
    case Opcode::kMux:      return "MUX";
    case Opcode::kDemux:    return "DEMUX";
    case Opcode::kSwap:     return "SWAP";
    case Opcode::kMergeAlt: return "MERGEA";
    case Opcode::kMergeSel: return "MERGES";
    case Opcode::kGate:     return "GATE";
    case Opcode::kDup:      return "DUP";
    case Opcode::kPack:     return "PACK";
    case Opcode::kUnpack:   return "UNPACK";
    case Opcode::kSel4:     return "SEL4";
    case Opcode::kAccum:    return "ACCUM";
    case Opcode::kCAdd:     return "CADD";
    case Opcode::kCSub:     return "CSUB";
    case Opcode::kCMulShr:  return "CMULS";
    case Opcode::kCConj:    return "CCONJ";
    case Opcode::kCRotMj:   return "CROTMJ";
    case Opcode::kCNeg:     return "CNEG";
    case Opcode::kCAccum:   return "CACCUM";
  }
  return "?";
}

OpInfo op_info(Opcode op) {
  // Masks: bit i of in_mask = input i required; bit i of out_mask =
  // output i driven.
  switch (op) {
    case Opcode::kNop:
    case Opcode::kNeg:
    case Opcode::kAbs:
    case Opcode::kNot:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kShrRound:
    case Opcode::kSel4:
    case Opcode::kCConj:
    case Opcode::kCNeg:
    case Opcode::kCRotMj:
      return {0b001, 0b01, false};
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kMulShr:
    case Opcode::kMin:
    case Opcode::kMax:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kEq:
    case Opcode::kNe:
    case Opcode::kLt:
    case Opcode::kLe:
    case Opcode::kGt:
    case Opcode::kGe:
    case Opcode::kPack:
    case Opcode::kCAdd:
    case Opcode::kCSub:
    case Opcode::kCMulShr:
      return {0b011, 0b01, false};
    case Opcode::kMux:
    case Opcode::kMergeSel:
      return {0b111, 0b01, false};
    case Opcode::kSwap:
      return {0b111, 0b11, false};
    case Opcode::kDemux:
      return {0b011, 0b11, false};
    case Opcode::kMergeAlt:
      return {0b011, 0b01, true};
    case Opcode::kGate:
    case Opcode::kAccum:
    case Opcode::kCAccum:
      return {0b011, 0b01, true};
    case Opcode::kDup:
    case Opcode::kUnpack:
      return {0b001, 0b11, false};
  }
  return {};
}

const char* object_kind_name(ObjectKind k) {
  switch (k) {
    case ObjectKind::kAlu:     return "ALU-PAE";
    case ObjectKind::kCounter: return "counter";
    case ObjectKind::kRam:     return "RAM-PAE";
    case ObjectKind::kInput:   return "input channel";
    case ObjectKind::kOutput:  return "output channel";
  }
  return "?";
}

}  // namespace rsp::xpp

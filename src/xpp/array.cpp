#include "src/xpp/array.hpp"

#include <algorithm>

namespace rsp::xpp {

ResourceMap::ResourceMap(ArrayGeometry geom)
    : geom_(geom),
      cell_owner_(static_cast<std::size_t>(geom.rows * geom.cols()), kNoConfig),
      io_owner_(static_cast<std::size_t>(geom.io_channels), kNoConfig),
      h_used_(cell_owner_.size(), 0),
      v_used_(cell_owner_.size(), 0) {}

bool ResourceMap::cell_free(Coord at) const {
  return cell_owner_[static_cast<std::size_t>(idx(at))] == kNoConfig;
}

ConfigId ResourceMap::owner(Coord at) const {
  return cell_owner_[static_cast<std::size_t>(idx(at))];
}

Coord ResourceMap::auto_place(ObjectKind kind, ConfigId id) {
  const bool wants_ram = (kind == ObjectKind::kRam);
  if (wants_ram) {
    for (int col : {0, geom_.alu_cols + 1}) {
      for (int row = 0; row < geom_.rows; ++row) {
        const Coord at{row, col};
        if (cell_free(at)) {
          cell_owner_[static_cast<std::size_t>(idx(at))] = id;
          return at;
        }
      }
    }
    throw ConfigError("array: no free RAM-PAE");
  }
  for (int col = 1; col <= geom_.alu_cols; ++col) {
    for (int row = 0; row < geom_.rows; ++row) {
      const Coord at{row, col};
      if (cell_free(at)) {
        cell_owner_[static_cast<std::size_t>(idx(at))] = id;
        return at;
      }
    }
  }
  throw ConfigError("array: no free ALU-PAE");
}

int ResourceMap::route(Coord src, Coord dst, ConfigId id) {
  // L-shaped route: horizontal along src.row, then vertical along
  // dst.col.  I/O pseudo-coordinates (col -1 / col == cols()) are
  // clamped to the array edge.
  const int cols = geom_.cols();
  const auto clampc = [cols](int c) { return std::clamp(c, 0, cols - 1); };
  int used = 0;
  const int c0 = clampc(src.col);
  const int c1 = clampc(dst.col);
  const int step = (c1 >= c0) ? 1 : -1;
  for (int c = c0; c != c1 + step; c += step) {
    const int cell = src.row * cols + c;
    if (h_used_[static_cast<std::size_t>(cell)] >= geom_.h_tracks_per_cell) {
      throw ConfigError("array: horizontal routing congestion at row " +
                        std::to_string(src.row) + " col " + std::to_string(c));
    }
    ++h_used_[static_cast<std::size_t>(cell)];
    segments_.push_back({cell, true, id});
    ++used;
  }
  const int rstep = (dst.row >= src.row) ? 1 : -1;
  for (int r = src.row; r != dst.row + rstep; r += rstep) {
    const int cell = r * cols + c1;
    if (v_used_[static_cast<std::size_t>(cell)] >= geom_.v_tracks_per_cell) {
      throw ConfigError("array: vertical routing congestion at row " +
                        std::to_string(r) + " col " + std::to_string(c1));
    }
    ++v_used_[static_cast<std::size_t>(cell)];
    segments_.push_back({cell, false, id});
    ++used;
  }
  return used;
}

Placement ResourceMap::place(const Configuration& cfg, ConfigId id) {
  // Two-phase: validate-and-claim with rollback on failure so a
  // rejected load leaves the array untouched.
  const auto cells_snapshot = cell_owner_;
  const auto io_snapshot = io_owner_;
  const auto h_snapshot = h_used_;
  const auto v_snapshot = v_used_;
  const auto seg_snapshot_size = segments_.size();
  try {
    Placement out;
    const int n = static_cast<int>(cfg.objects.size());
    out.object_cell.assign(static_cast<std::size_t>(n), Coord{-1, -1});
    out.io_channel.assign(static_cast<std::size_t>(n), -1);

    int next_io = 0;
    for (int oi = 0; oi < n; ++oi) {
      const auto& o = cfg.objects[static_cast<std::size_t>(oi)];
      if (o.kind == ObjectKind::kInput || o.kind == ObjectKind::kOutput) {
        if (o.kind == ObjectKind::kInput && o.control) {
          // Control-event source: injected by the configuration
          // manager, no physical channel claimed.
          continue;
        }
        while (next_io < geom_.io_channels &&
               io_owner_[static_cast<std::size_t>(next_io)] != kNoConfig) {
          ++next_io;
        }
        if (next_io >= geom_.io_channels) {
          throw ConfigError("array: no free I/O channel for '" + o.name + "'");
        }
        io_owner_[static_cast<std::size_t>(next_io)] = id;
        out.io_channel[static_cast<std::size_t>(oi)] = next_io;
        continue;
      }
      if (o.placement) {
        const Coord at = *o.placement;
        if (at.row < 0 || at.row >= geom_.rows || at.col < 0 ||
            at.col >= geom_.cols()) {
          throw ConfigError("array: placement for '" + o.name +
                            "' out of bounds");
        }
        const bool ram_cell = geom_.is_ram_col(at.col);
        if (ram_cell != (o.kind == ObjectKind::kRam)) {
          throw ConfigError("array: placement for '" + o.name +
                            "' on wrong PAE type");
        }
        if (!cell_free(at)) {
          throw ConfigError(
              "array: cell occupied — configuration may not overwrite '" +
              o.name + "' target");
        }
        cell_owner_[static_cast<std::size_t>(idx(at))] = id;
        out.object_cell[static_cast<std::size_t>(oi)] = at;
      } else {
        out.object_cell[static_cast<std::size_t>(oi)] =
            auto_place(o.kind, id);
      }
    }

    // Route every connection between placed endpoints.
    for (const auto& c : cfg.connections) {
      const auto endpoint = [&](PortRef p) -> Coord {
        const auto i = static_cast<std::size_t>(p.object);
        if (out.io_channel[i] >= 0) {
          // I/O channels sit at the left array edge, one per row.
          return Coord{out.io_channel[i] % geom_.rows, -1};
        }
        if (out.object_cell[i].col < 0) {
          // Control-event input: injected at the config-manager edge.
          return Coord{0, -1};
        }
        return out.object_cell[i];
      };
      out.routing_segments += route(endpoint(c.src), endpoint(c.dst), id);
    }
    peak_alu_ = std::max(peak_alu_, used_alu_cells());
    peak_ram_ = std::max(peak_ram_, used_ram_cells());
    return out;
  } catch (...) {
    cell_owner_ = cells_snapshot;
    io_owner_ = io_snapshot;
    h_used_ = h_snapshot;
    v_used_ = v_snapshot;
    segments_.resize(seg_snapshot_size);
    throw;
  }
}

void ResourceMap::release(ConfigId id) {
  for (auto& o : cell_owner_) {
    if (o == id) o = kNoConfig;
  }
  for (auto& o : io_owner_) {
    if (o == id) o = kNoConfig;
  }
  std::erase_if(segments_, [&](const Segment& s) {
    if (s.owner != id) return false;
    auto& counts = s.horizontal ? h_used_ : v_used_;
    --counts[static_cast<std::size_t>(s.cell)];
    return true;
  });
}

int ResourceMap::free_alu_cells() const {
  int n = 0;
  for (int row = 0; row < geom_.rows; ++row) {
    for (int col = 1; col <= geom_.alu_cols; ++col) {
      n += cell_free({row, col}) ? 1 : 0;
    }
  }
  return n;
}

int ResourceMap::free_ram_cells() const {
  int n = 0;
  for (int row = 0; row < geom_.rows; ++row) {
    n += cell_free({row, 0}) ? 1 : 0;
    n += cell_free({row, geom_.alu_cols + 1}) ? 1 : 0;
  }
  return n;
}

int ResourceMap::free_io_channels() const {
  int n = 0;
  for (const auto o : io_owner_) n += (o == kNoConfig) ? 1 : 0;
  return n;
}

int ResourceMap::routing_in_use() const {
  return static_cast<int>(segments_.size());
}

std::string ResourceMap::occupancy_map() const {
  std::string s;
  for (int row = 0; row < geom_.rows; ++row) {
    for (int col = 0; col < geom_.cols(); ++col) {
      const ConfigId o = owner({row, col});
      if (o == kNoConfig) {
        s += geom_.is_ram_col(col) ? 'r' : '.';
      } else {
        s += static_cast<char>('A' + (o % 26));
      }
    }
    s += '\n';
  }
  return s;
}

}  // namespace rsp::xpp

// Token-carrying communication resource between PAE ports.
//
// The paper (Sections 2 and 4): "Handshake protocols implemented in the
// communication resources maintain a token-oriented data flow."  A Net
// models one registered routing resource: it holds at most one token,
// the producer may refill it in the same cycle a consumer drains it
// (combinational ready path, giving one-value-per-cycle pipelining),
// and a token fans out to every sink and is only released once all
// sinks have consumed it — no token is ever lost or duplicated.
#pragma once

#include <cstdint>
#include <optional>

#include "src/xpp/types.hpp"

namespace rsp::xpp {

class Net {
 public:
  /// Register a consumer; returns its sink index.
  int add_sink() {
    return num_sinks_++;
  }

  int num_sinks() const { return num_sinks_; }

  /// Preload an initial token (register preloading; required to prime
  /// feedback loops such as accumulators).
  void preload(Word v) {
    value_ = v;
    has_value_ = true;
    consumed_mask_ = 0;
  }

  /// True if sink @p sink can consume a token this cycle.
  [[nodiscard]] bool can_read(int sink) const {
    return has_value_ && ((consumed_mask_ >> sink) & 1u) == 0;
  }

  /// Value of the current token (valid only if some sink can_read).
  [[nodiscard]] Word peek() const { return value_; }

  /// Consume the current token for sink @p sink.
  void consume(int sink) { consumed_mask_ |= 1u << sink; }

  /// True if the producer can stage a new token this cycle.  The slot
  /// counts as free once every sink has consumed the resident token.
  [[nodiscard]] bool can_write() const {
    return !staged_.has_value() && (!has_value_ || all_consumed());
  }

  /// Stage a token; it becomes visible to sinks at the next commit.
  void stage(Word v) { staged_ = v; }

  /// End-of-cycle register update.
  void commit() {
    if (has_value_ && all_consumed()) {
      has_value_ = false;
      consumed_mask_ = 0;
    }
    if (staged_) {
      value_ = *staged_;
      has_value_ = true;
      consumed_mask_ = 0;
      staged_.reset();
    }
  }

  /// True if a token is resident (for quiescence / drain checks).
  [[nodiscard]] bool occupied() const { return has_value_ || staged_.has_value(); }

 private:
  [[nodiscard]] bool all_consumed() const {
    const std::uint32_t full = (num_sinks_ >= 32)
                                   ? ~0u
                                   : ((1u << num_sinks_) - 1u);
    return (consumed_mask_ & full) == full;
  }

  Word value_ = 0;
  bool has_value_ = false;
  std::uint32_t consumed_mask_ = 0;
  std::optional<Word> staged_;
  int num_sinks_ = 0;
};

}  // namespace rsp::xpp

// Token-carrying communication resource between PAE ports.
//
// The paper (Sections 2 and 4): "Handshake protocols implemented in the
// communication resources maintain a token-oriented data flow."  A Net
// models one registered routing resource: it holds at most one token,
// the producer may refill it in the same cycle a consumer drains it
// (combinational ready path, giving one-value-per-cycle pipelining),
// and a token fans out to every sink and is only released once all
// sinks have consumed it — no token is ever lost or duplicated.
//
// For the event-driven scheduler each net also carries waiter
// back-pointers: the producer object (set by Object::bind_out) and one
// object per sink (set by Object::bind_in).  The Simulator uses them to
// enqueue exactly the objects whose readiness may have changed when the
// net's token state changes; standalone Net usage (unit tests) may omit
// them.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/xpp/types.hpp"

namespace rsp::xpp {

class Object;

/// Hard fan-out limit: the consumed bookkeeping is a 32-bit mask.
inline constexpr int kMaxNetSinks = 32;

class Net {
 public:
  /// Register a consumer; returns its sink index.  @p waiter (may be
  /// null for standalone nets) is the object to notify when a token
  /// becomes readable.  Throws ConfigError past kMaxNetSinks sinks.
  int add_sink(Object* waiter = nullptr);

  int num_sinks() const { return num_sinks_; }

  /// Producer back-pointer (the object bound to this net's write side).
  void set_producer(Object* o) { producer_ = o; }
  [[nodiscard]] Object* producer() const { return producer_; }

  /// Sink waiter back-pointers, indexed by sink (entries may be null).
  [[nodiscard]] const std::vector<Object*>& sink_waiters() const {
    return sink_waiters_;
  }

  /// Preload an initial token (register preloading; required to prime
  /// feedback loops such as accumulators).
  void preload(Word v) {
    value_ = v;
    has_value_ = true;
    consumed_mask_ = 0;
    ++generation_;
  }

  /// True if sink @p sink can consume a token this cycle.
  [[nodiscard]] bool can_read(int sink) const {
    return has_value_ && ((consumed_mask_ >> sink) & 1u) == 0;
  }

  /// Value of the current token (valid only if some sink can_read).
  [[nodiscard]] Word peek() const { return value_; }

  /// Consume the current token for sink @p sink.
  void consume(int sink) { consumed_mask_ |= 1u << sink; }

  /// True if the producer can stage a new token this cycle.  The slot
  /// counts as free once every sink has consumed the resident token.
  [[nodiscard]] bool can_write() const {
    return !staged_.has_value() && (!has_value_ || all_consumed());
  }

  /// Stage a token; it becomes visible to sinks at the next commit.
  void stage(Word v) { staged_ = v; }

  /// End-of-cycle register update.
  void commit() {
    if (has_value_ && all_consumed()) {
      has_value_ = false;
      consumed_mask_ = 0;
    }
    if (staged_) {
      value_ = *staged_;
      has_value_ = true;
      consumed_mask_ = 0;
      staged_.reset();
      ++generation_;
    }
  }

  /// Token-arrival counter: bumped each time a token is latched (commit
  /// of a staged value, or a preload).  Scheduler-independent: under
  /// kScan every net is committed every cycle but a latch only happens
  /// when a value was staged, and under kEventDriven a staged net is
  /// always on the dirty list — so both schedulers observe identical
  /// generations at every cycle boundary.  The observability layer uses
  /// the per-boundary delta for token throughput, and "occupied with an
  /// unchanged generation" as the backpressure signal (the resident
  /// token survived a full cycle).
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  /// True if the next commit() would change the net's state.  Lets the
  /// dirty-net commit loop keep a net listed across cycles even when no
  /// object touches it again (a zero-sink net drops its token one
  /// commit after the token lands).
  [[nodiscard]] bool commit_pending() const {
    return staged_.has_value() || (has_value_ && all_consumed());
  }

  /// Dirty-list membership flag (owned by the scheduler).  mark_dirty
  /// returns true only on the clean→dirty edge so callers can push the
  /// net onto the commit list exactly once.
  bool mark_dirty() {
    if (dirty_) return false;
    dirty_ = true;
    return true;
  }
  void clear_dirty() { dirty_ = false; }

  /// True if a token is resident (for quiescence / drain checks).
  [[nodiscard]] bool occupied() const { return has_value_ || staged_.has_value(); }

  /// SEU hook: flip bit @p bit (0..23) of the resident token, keeping
  /// the 24-bit sign-extension invariant.  Returns false (no-op) when
  /// no token is resident — an upset on empty routing is harmless.
  /// Token *presence* is untouched, so sink readiness never changes.
  bool corrupt_bit(int bit);

 private:
  /// The compiled scheduler (src/xpp/compiled.hpp) packs net state into
  /// SoA arrays while an epoch program is armed and restores it —
  /// including the generation counter, advanced by the latches the
  /// replay performed — bit-identically on deoptimization.
  friend class CompiledProgram;
  friend class BatchedReplayEngine;
  friend class CanonicalProgram;
  friend class SnapshotAccess;  ///< bit-exact save/restore (snapshot.hpp)

  [[nodiscard]] bool all_consumed() const {
    const std::uint32_t full = (num_sinks_ >= 32)
                                   ? ~0u
                                   : ((1u << num_sinks_) - 1u);
    return (consumed_mask_ & full) == full;
  }

  Word value_ = 0;
  bool has_value_ = false;
  std::uint32_t consumed_mask_ = 0;
  std::optional<Word> staged_;
  std::uint64_t generation_ = 0;
  int num_sinks_ = 0;
  bool dirty_ = false;
  Object* producer_ = nullptr;
  std::vector<Object*> sink_waiters_;
};

}  // namespace rsp::xpp

#include "src/xpp/fault.hpp"

#include <algorithm>

#include "src/common/word.hpp"
#include "src/xpp/io.hpp"
#include "src/xpp/ram.hpp"
#include "src/xpp/sim.hpp"

namespace rsp::xpp {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kNetBitFlip:  return "net_bit_flip";
    case FaultKind::kStuckObject: return "stuck_object";
    case FaultKind::kRamCorrupt:  return "ram_corrupt";
    case FaultKind::kDropToken:   return "drop_token";
    case FaultKind::kDupToken:    return "dup_token";
  }
  return "?";
}

void FaultInjector::install(FaultPlan plan) {
  plan_ = std::move(plan);
  // Stable sort keeps the authored order for same-cycle faults, so a
  // plan replays in a well-defined sequence under both schedulers.
  std::stable_sort(plan_.faults.begin(), plan_.faults.end(),
                   [](const Fault& a, const Fault& b) {
                     return a.cycle < b.cycle;
                   });
  next_fault_ = 0;
  stuck_.clear();
  wake_pending_ = false;
  armed_ = !plan_.empty();
  log_.clear();
  rng_ = Rng(plan_.seu.seed);
}

bool FaultInjector::events_pending() const {
  if (next_fault_ < plan_.faults.size()) return true;
  if (wake_pending_) return true;
  for (const auto& s : stuck_) {
    if (s.until != kStuckForever) return true;
  }
  return false;
}

Object* FaultInjector::find_target(Simulator& sim, const std::string& name,
                                   int group) {
  for (const auto& [id, g] : sim.groups_) {
    if (group >= 0 && id != group) continue;
    const auto it = g.by_name.find(name);
    if (it != g.by_name.end()) return it->second;
  }
  return nullptr;
}

void FaultInjector::on_cycle(Simulator& sim) {
  const long long cycle = sim.cycle();  // the cycle about to execute

  // Expire / extend stuck windows.  A stuck PAE is marked as already
  // fired for the upcoming cycle, which both schedulers honour without
  // touching the firing hot path; on expiry the object is woken so the
  // event-driven worklist rechecks it.  The expiry happens at the end
  // of a step that may have fired nothing, so wake_pending_ keeps
  // events_pending() true through the woken object's first cycle —
  // otherwise run_until_quiescent would stop at the expiry boundary.
  wake_pending_ = false;
  for (std::size_t i = 0; i < stuck_.size();) {
    if (cycle >= stuck_[i].until) {
      if (sim.kind_ == SchedulerKind::kEventDriven) {
        sim.enqueue_next(stuck_[i].object);
      }
      wake_pending_ = true;
      stuck_[i] = stuck_.back();
      stuck_.pop_back();
    } else {
      stuck_[i].object->force_fired(cycle);
      ++i;
    }
  }

  while (next_fault_ < plan_.faults.size() &&
         plan_.faults[next_fault_].cycle <= cycle) {
    strike(sim, plan_.faults[next_fault_]);
    ++next_fault_;
  }

  if (plan_.seu.per_cycle_prob > 0.0 && cycle >= plan_.seu.from &&
      cycle < plan_.seu.to) {
    random_seu(sim, cycle);
  }

  // Cache whether any future boundary still needs this callback; once
  // false, Simulator::step skips the call for the rest of the run.
  armed_ = next_fault_ < plan_.faults.size() || wake_pending_ ||
           !stuck_.empty() ||
           (plan_.seu.per_cycle_prob > 0.0 && cycle + 1 < plan_.seu.to);
}

void FaultInjector::strike(Simulator& sim, const Fault& f) {
  FaultEvent ev;
  ev.cycle = sim.cycle();
  ev.kind = f.kind;
  ev.target = f.object;
  Object* obj = find_target(sim, f.object, f.group);
  if (obj == nullptr) {
    log_.push_back(std::move(ev));  // target not resident: miss
    return;
  }
  switch (f.kind) {
    case FaultKind::kNetBitFlip: {
      ev.target = f.object + ".out" + std::to_string(f.port);
      ev.detail = f.bit;
      Net* net = f.port >= 0 && f.port < kMaxOut ? obj->out_net(f.port)
                                                 : nullptr;
      ev.hit = net != nullptr && net->corrupt_bit(f.bit);
      break;
    }
    case FaultKind::kStuckObject: {
      const long long until =
          f.duration == kStuckForever ? kStuckForever : ev.cycle + f.duration;
      stuck_.push_back({obj, until});
      obj->force_fired(ev.cycle);
      ev.detail = f.duration == kStuckForever
                      ? -1
                      : static_cast<int>(f.duration);
      ev.hit = true;
      break;
    }
    case FaultKind::kRamCorrupt: {
      auto* ram = dynamic_cast<RamObject*>(obj);
      ev.detail = f.addr;
      ev.hit = ram != nullptr && ram->corrupt_word(f.addr, f.mask);
      break;
    }
    case FaultKind::kDropToken:
    case FaultKind::kDupToken: {
      auto* in = dynamic_cast<InputObject*>(obj);
      if (in != nullptr) {
        ev.detail = static_cast<int>(in->pending());
        ev.hit = f.kind == FaultKind::kDropToken ? in->drop_front()
                                                 : in->dup_front();
        // Queue-length changes never flip empty->nonempty, so no wake
        // is needed for scheduler equivalence.
      }
      break;
    }
  }
  log_.push_back(std::move(ev));
}

void FaultInjector::random_seu(Simulator& sim, long long cycle) {
  // Exactly one uniform draw per armed cycle, so the stream replays
  // bit-identically for a given seed regardless of what it hits.
  if (rng_.uniform() >= plan_.seu.per_cycle_prob) return;
  std::size_t total = 0;
  for (const auto& [id, g] : sim.groups_) {
    (void)id;
    total += g.nets.size();
  }
  FaultEvent ev;
  ev.cycle = cycle;
  ev.kind = FaultKind::kNetBitFlip;
  if (total == 0) {
    ev.target = "<no nets>";
    log_.push_back(std::move(ev));
    return;
  }
  std::size_t pick = rng_.below(static_cast<std::uint32_t>(total));
  const int bit = static_cast<int>(rng_.below(kWordBits));
  for (const auto& [id, g] : sim.groups_) {
    (void)id;
    if (pick >= g.nets.size()) {
      pick -= g.nets.size();
      continue;
    }
    Net* net = g.nets[pick].get();
    ev.target = "seu:" + net_label(net);
    ev.detail = bit;
    ev.hit = net->corrupt_bit(bit);
    break;
  }
  log_.push_back(std::move(ev));
}

}  // namespace rsp::xpp

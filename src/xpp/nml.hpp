// Minimal NML-like textual configuration format.
//
// The paper's design flow (Figure 3) lowers annotated C through XPP-VC
// into NML, the array's native structural language.  This loader covers
// the structural subset needed here so configurations can also be
// authored/shipped as plain text:
//
//   config <name>
//   obj <name> INPUT | CINPUT | OUTPUT
//   obj <name> ALU <OPCODE> [shift=<n>] [wrap] [table=a,b,c,d]
//   obj <name> COUNTER [start=<n>] [step=<n>] [mod=<n>]
//   obj <name> RAM RAM|FIFO|LUT|CLUT [cap=<n>] [preload=a,b,...]
//   tie  <obj>.in<k> <value>
//   conn <obj>.out<k> <obj>.in<k> [preload=<value>]
//   place <obj> <row> <col>
//
// '#' starts a comment.  Throws ConfigError on any malformed input.
#pragma once

#include <string>

#include "src/xpp/configuration.hpp"

namespace rsp::xpp {

/// Parse an NML-subset description into a Configuration.
[[nodiscard]] Configuration parse_nml(const std::string& text);

/// Parse an NML file from disk (throws ConfigError if unreadable).
[[nodiscard]] Configuration parse_nml_file(const std::string& path);

/// Emit a Configuration back to the textual format (round-trippable for
/// everything the loader accepts).
[[nodiscard]] std::string to_nml(const Configuration& cfg);

/// Opcode from its canonical name (as printed by opcode_name).
[[nodiscard]] Opcode opcode_from_name(const std::string& name);

/// Graphviz (dot) rendering of a configuration's dataflow graph —
/// objects as nodes (shape by PAE kind), connections as edges labelled
/// with port indices.  Feed to `dot -Tsvg` to visualize a mapping.
[[nodiscard]] std::string to_dot(const Configuration& cfg);

}  // namespace rsp::xpp

// Umbrella header for the reconfigurable-SDR library.
//
// Include this for the whole public API, or include the per-module
// headers directly (they are self-contained).
#pragma once

// Common substrate: datapath arithmetic, complex types, RNG.
#include "src/common/cplx.hpp"
#include "src/common/dbmath.hpp"
#include "src/common/rng.hpp"
#include "src/common/word.hpp"

// XPP-class reconfigurable array.
#include "src/xpp/builder.hpp"
#include "src/xpp/macros.hpp"
#include "src/xpp/manager.hpp"
#include "src/xpp/nml.hpp"
#include "src/xpp/runner.hpp"

// Dedicated-hardware blocks.
#include "src/dedhw/convcode.hpp"
#include "src/dedhw/convcode_gen.hpp"
#include "src/dedhw/crc.hpp"
#include "src/dedhw/ovsf.hpp"
#include "src/dedhw/umts_scrambler.hpp"
#include "src/dedhw/viterbi.hpp"
#include "src/dedhw/wlan_scrambler.hpp"

// DSP cost model.
#include "src/dsp/dsp.hpp"

// PHY substrate.
#include "src/phy/channel.hpp"
#include "src/phy/fft.hpp"
#include "src/phy/interleaver.hpp"
#include "src/phy/jakes.hpp"
#include "src/phy/modulation.hpp"
#include "src/phy/ofdm_tx.hpp"
#include "src/phy/umts_tx.hpp"

// 2G baseline.
#include "src/gsm/burst.hpp"
#include "src/gsm/equalizer.hpp"

// Rake receiver application.
#include "src/rake/agc.hpp"
#include "src/rake/golden.hpp"
#include "src/rake/maps.hpp"
#include "src/rake/multidch.hpp"
#include "src/rake/receiver.hpp"
#include "src/rake/scenario.hpp"
#include "src/rake/search.hpp"
#include "src/rake/tdm.hpp"
#include "src/rake/transport.hpp"

// OFDM decoder application.
#include "src/ofdm/golden.hpp"
#include "src/ofdm/maps.hpp"

// SDR terminal integration.
#include "src/sdr/area_model.hpp"
#include "src/sdr/board.hpp"
#include "src/sdr/mips_model.hpp"
#include "src/sdr/partitioning.hpp"
#include "src/sdr/rate_mobility.hpp"

#!/usr/bin/env bash
# One-command verification sweep: tier-1 build + tests across the
# sanitizer configs, the scalar-fallback SIMD configuration, the
# snapshot battery, the kill-and-resume campaign smoke, and the perf
# smoke benches.
#
#   scripts/check.sh          # everything below
#   scripts/check.sh quick    # tier-1 build + tests only
#
# Build trees land in build-check-<name>/ next to the source tree so
# the developer's own build/ is never touched.  Every stage runs under
# a wall-clock timeout so a wedged build or test hangs the sweep for a
# bounded time instead of forever.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"
MODE="${1:-full}"
# Per-stage timeout (seconds); sanitizer builds are the slowest stages.
STAGE_TIMEOUT="${RSP_STAGE_TIMEOUT:-1800}"

configure_build_test() {
  local name="$1" ctest_args="$2"
  shift 2
  local dir="$ROOT/build-check-$name"
  echo "==== [$name] configure + build ===="
  timeout "$STAGE_TIMEOUT" cmake -S "$ROOT" -B "$dir" \
    -DCMAKE_BUILD_TYPE=Release "$@" >/dev/null
  timeout "$STAGE_TIMEOUT" cmake --build "$dir" -j "$JOBS"
  echo "==== [$name] ctest $ctest_args ===="
  # shellcheck disable=SC2086
  (cd "$dir" && timeout "$STAGE_TIMEOUT" ctest --output-on-failure \
    -j "$JOBS" $ctest_args)
}

# Kill-and-resume smoke: SIGKILL a checkpointing campaign mid-run, then
# resume from its checkpoint and require the final aggregate line to be
# byte-identical to an uninterrupted run's — the crash-resilience
# contract, exercised with a real kill against a real process.
kill_resume_smoke() {
  local dir="$ROOT/build-check-tier1"
  local work ck ref_agg resumed_agg
  work="$(mktemp -d)"
  ck="$work/campaign.ck"
  echo "==== [resume] kill-and-resume campaign smoke ===="

  # Uninterrupted reference.
  ref_agg="$(timeout "$STAGE_TIMEOUT" "$dir/examples/farm_campaign" \
    --tasks 200 --seed 77 --poison 13 | grep '^AGG ')"

  # Checkpointing run (slowed trials, few threads, frequent
  # checkpoints), SIGKILLed as soon as the first checkpoint exists —
  # i.e. genuinely mid-campaign.
  timeout "$STAGE_TIMEOUT" "$dir/examples/farm_campaign" \
    --tasks 200 --seed 77 --poison 13 --trial-us 5000 --threads 2 \
    --checkpoint "$ck" --every 8 &
  local pid=$!
  for _ in $(seq 1 200); do
    [ -s "$ck" ] && break
    sleep 0.1
  done
  if ! [ -s "$ck" ]; then
    echo "resume smoke: no checkpoint appeared before the kill" >&2
    kill -KILL "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    rm -rf "$work"
    return 1
  fi
  kill -KILL "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true

  # Resume must finish the campaign and reproduce the reference
  # aggregate bit for bit.
  resumed_agg="$(timeout "$STAGE_TIMEOUT" "$dir/examples/farm_campaign" \
    --tasks 200 --seed 77 --poison 13 \
    --checkpoint "$ck" --every 8 --resume | grep '^AGG ')"
  rm -rf "$work"

  if [ "$ref_agg" != "$resumed_agg" ]; then
    echo "resume smoke: aggregate diverged after kill+resume" >&2
    echo "  reference: $ref_agg" >&2
    echo "  resumed:   $resumed_agg" >&2
    return 1
  fi
  echo "resume smoke: resumed aggregate bit-identical ($resumed_agg)"
}

# Tier-1: the contract every PR must keep (ROADMAP.md).
configure_build_test tier1 ""

if [ "$MODE" = "quick" ]; then
  echo "check.sh: quick mode done (tier-1 green)"
  exit 0
fi

# Memory-safety sweep: the full suite under ASan+UBSan.
configure_build_test asan "" -DRSP_SANITIZE=address,undefined

# Thread-safety sweep: the multi-threaded subsystems — the farm
# battery (including the resilient campaign driver) and the fleet
# session manager's group dispatch — must be TSan-clean.
configure_build_test tsan "-L farm|fleet" -DRSP_SANITIZE=tsan

# Scalar-fallback SIMD: non-x86 builds must never break silently, and
# the batched-replay and PHY-substrate batteries must stay bit-identical
# without lanes.
configure_build_test simd-off "-L simd|phy" -DRSP_SIMD=off

# Vectorized-PHY-substrate battery: block transmit/channel paths
# bit-identical to the scalar references, Doppler phase vs long-double
# golden, dispatched vs baseline kernel tables (already part of tier-1;
# repeated by label, again under ASan+UBSan, with a forced-reference
# (RSP_PHY_BATCH=off) pass, and the bench_phy smoke with its >=2x
# sample-generation gate).
echo "==== [phy] ctest -L phy ===="
(cd "$ROOT/build-check-tier1" && timeout "$STAGE_TIMEOUT" \
  ctest --output-on-failure -j "$JOBS" -L phy)
echo "==== [phy-asan] ctest -L phy (ASan+UBSan) ===="
(cd "$ROOT/build-check-asan" && timeout "$STAGE_TIMEOUT" \
  ctest --output-on-failure -j "$JOBS" -L phy)
echo "==== [phy-reference] full suite with RSP_PHY_BATCH=off ===="
(cd "$ROOT/build-check-tier1" && timeout "$STAGE_TIMEOUT" \
  env RSP_PHY_BATCH=off ctest --output-on-failure -j "$JOBS")
echo "==== [phy] bench_phy --smoke (speedup gate) ===="
(cd "$ROOT/build-check-tier1/bench" && timeout "$STAGE_TIMEOUT" \
  ./bench_phy --smoke)

# Snapshot battery: save→restore→continue bit-identity under every
# scheduler plus the corruption fuzz (already part of tier-1; repeated
# by label here so a snapshot regression is named in the sweep output).
echo "==== [snapshot] ctest -L snapshot ===="
(cd "$ROOT/build-check-tier1" && timeout "$STAGE_TIMEOUT" \
  ctest --output-on-failure -j "$JOBS" -L snapshot)

# Fleet-serving battery: cache-hit admission vs cold per-instance
# kCompiled bit-identity, mid-session reconfigure, evict/re-admit
# determinism across thread counts (already part of tier-1; repeated by
# label so a serving regression is named in the sweep output).
echo "==== [fleet] ctest -L fleet ===="
(cd "$ROOT/build-check-tier1" && timeout "$STAGE_TIMEOUT" \
  ctest --output-on-failure -j "$JOBS" -L fleet)

# Workload battery: the Viterbi-ACS and channelizer array workloads
# plus the delta-reconfiguration fuzz — golden-reference differential
# tests over randomized inputs (already part of tier-1; repeated by
# label here, and again in the ASan+UBSan tree, so a workload
# regression is named in the sweep output and the randomized batteries
# get a dedicated memory-safety pass).
echo "==== [workload] ctest -L workload ===="
(cd "$ROOT/build-check-tier1" && timeout "$STAGE_TIMEOUT" \
  ctest --output-on-failure -j "$JOBS" -L workload)
echo "==== [workload-asan] ctest -L workload (ASan+UBSan) ===="
(cd "$ROOT/build-check-asan" && timeout "$STAGE_TIMEOUT" \
  ctest --output-on-failure -j "$JOBS" -L workload)

# Crash-resilience end to end: kill a real campaign, resume it.
kill_resume_smoke

# Perf smoke: every bench binary runs its smoke preset and emits its
# BENCH_*.json (numbers are advisory; failures are regressions in the
# harnesses themselves, e.g. a bit-identity cross-check tripping).
echo "==== [perf] ctest -L perf (smoke) ===="
(cd "$ROOT/build-check-tier1" && timeout "$STAGE_TIMEOUT" \
  ctest --output-on-failure -L perf)

# Every emitted BENCH_*.json must carry the host-capability context
# block (compiler, arch, SIMD ISA, lane width, hardware_concurrency) —
# perf numbers without it are not comparable across machines.
echo "==== [perf] BENCH_*.json host-context check ===="
shopt -s nullglob
bench_jsons=("$ROOT"/build-check-tier1/bench/BENCH_*.json)
shopt -u nullglob
if [ "${#bench_jsons[@]}" -eq 0 ]; then
  echo "perf smoke emitted no BENCH_*.json" >&2
  exit 1
fi
for f in "${bench_jsons[@]}"; do
  if ! grep -q '"host":' "$f"; then
    echo "BENCH json missing host context block: $f" >&2
    exit 1
  fi
done
echo "host context present in ${#bench_jsons[@]} BENCH_*.json files"

echo "check.sh: all configurations green"

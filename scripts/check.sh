#!/usr/bin/env bash
# One-command verification sweep: tier-1 build + tests across the
# sanitizer configs, the scalar-fallback SIMD configuration, and the
# perf smoke benches.
#
#   scripts/check.sh          # everything below
#   scripts/check.sh quick    # tier-1 build + tests only
#
# Build trees land in build-check-<name>/ next to the source tree so
# the developer's own build/ is never touched.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"
MODE="${1:-full}"

configure_build_test() {
  local name="$1" ctest_args="$2"
  shift 2
  local dir="$ROOT/build-check-$name"
  echo "==== [$name] configure + build ===="
  cmake -S "$ROOT" -B "$dir" -DCMAKE_BUILD_TYPE=Release "$@" >/dev/null
  cmake --build "$dir" -j "$JOBS"
  echo "==== [$name] ctest $ctest_args ===="
  # shellcheck disable=SC2086
  (cd "$dir" && ctest --output-on-failure -j "$JOBS" $ctest_args)
}

# Tier-1: the contract every PR must keep (ROADMAP.md).
configure_build_test tier1 ""

if [ "$MODE" = "quick" ]; then
  echo "check.sh: quick mode done (tier-1 green)"
  exit 0
fi

# Memory-safety sweep: the full suite under ASan+UBSan.
configure_build_test asan "" -DRSP_SANITIZE=address,undefined

# Thread-safety sweep: the farm battery (the only multi-threaded
# subsystem) must be TSan-clean.
configure_build_test tsan "-L farm" -DRSP_SANITIZE=tsan

# Scalar-fallback SIMD: non-x86 builds must never break silently, and
# the batched-replay battery must stay bit-identical without lanes.
configure_build_test simd-off "-L simd" -DRSP_SIMD=off

# Perf smoke: every bench binary runs its smoke preset and emits its
# BENCH_*.json (numbers are advisory; failures are regressions in the
# harnesses themselves, e.g. a bit-identity cross-check tripping).
echo "==== [perf] ctest -L perf (smoke) ===="
(cd "$ROOT/build-check-tier1" && ctest --output-on-failure -L perf)

echo "check.sh: all configurations green"

file(REMOVE_RECURSE
  "CMakeFiles/farm_campaign.dir/farm_campaign.cpp.o"
  "CMakeFiles/farm_campaign.dir/farm_campaign.cpp.o.d"
  "farm_campaign"
  "farm_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/farm_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

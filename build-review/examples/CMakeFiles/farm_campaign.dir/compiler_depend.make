# Empty compiler generated dependencies file for farm_campaign.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/multistandard_terminal.dir/multistandard_terminal.cpp.o"
  "CMakeFiles/multistandard_terminal.dir/multistandard_terminal.cpp.o.d"
  "multistandard_terminal"
  "multistandard_terminal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multistandard_terminal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for multistandard_terminal.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for wlan_ofdm_link.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/wlan_ofdm_link.dir/wlan_ofdm_link.cpp.o"
  "CMakeFiles/wlan_ofdm_link.dir/wlan_ofdm_link.cpp.o.d"
  "wlan_ofdm_link"
  "wlan_ofdm_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlan_ofdm_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

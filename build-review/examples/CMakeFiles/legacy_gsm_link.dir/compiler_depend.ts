# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for legacy_gsm_link.

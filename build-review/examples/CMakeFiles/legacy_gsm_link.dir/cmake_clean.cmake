file(REMOVE_RECURSE
  "CMakeFiles/legacy_gsm_link.dir/legacy_gsm_link.cpp.o"
  "CMakeFiles/legacy_gsm_link.dir/legacy_gsm_link.cpp.o.d"
  "legacy_gsm_link"
  "legacy_gsm_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legacy_gsm_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

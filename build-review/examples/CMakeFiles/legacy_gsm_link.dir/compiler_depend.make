# Empty compiler generated dependencies file for legacy_gsm_link.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rake_softhandover.dir/rake_softhandover.cpp.o"
  "CMakeFiles/rake_softhandover.dir/rake_softhandover.cpp.o.d"
  "rake_softhandover"
  "rake_softhandover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rake_softhandover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

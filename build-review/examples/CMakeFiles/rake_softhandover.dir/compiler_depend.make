# Empty compiler generated dependencies file for rake_softhandover.
# This may be replaced when dependencies are built.

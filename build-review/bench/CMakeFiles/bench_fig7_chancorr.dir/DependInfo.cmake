
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_chancorr.cpp" "bench/CMakeFiles/bench_fig7_chancorr.dir/bench_fig7_chancorr.cpp.o" "gcc" "bench/CMakeFiles/bench_fig7_chancorr.dir/bench_fig7_chancorr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/farm/CMakeFiles/rsp_farm.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sdr/CMakeFiles/rsp_sdr.dir/DependInfo.cmake"
  "/root/repo/build-review/src/rake/CMakeFiles/rsp_rake.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ofdm/CMakeFiles/rsp_ofdm.dir/DependInfo.cmake"
  "/root/repo/build-review/src/gsm/CMakeFiles/rsp_gsm.dir/DependInfo.cmake"
  "/root/repo/build-review/src/phy/CMakeFiles/rsp_phy.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dedhw/CMakeFiles/rsp_dedhw.dir/DependInfo.cmake"
  "/root/repo/build-review/src/xpp/CMakeFiles/rsp_xpp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/rsp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

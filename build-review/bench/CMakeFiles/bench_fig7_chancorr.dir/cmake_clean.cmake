file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_chancorr.dir/bench_fig7_chancorr.cpp.o"
  "CMakeFiles/bench_fig7_chancorr.dir/bench_fig7_chancorr.cpp.o.d"
  "bench_fig7_chancorr"
  "bench_fig7_chancorr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_chancorr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_xpp.dir/bench_micro_xpp.cpp.o"
  "CMakeFiles/bench_micro_xpp.dir/bench_micro_xpp.cpp.o.d"
  "bench_micro_xpp"
  "bench_micro_xpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_xpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_micro_xpp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fftscale.dir/bench_ablation_fftscale.cpp.o"
  "CMakeFiles/bench_ablation_fftscale.dir/bench_ablation_fftscale.cpp.o.d"
  "bench_ablation_fftscale"
  "bench_ablation_fftscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fftscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ablation_fftscale.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_mips.dir/bench_fig1_mips.cpp.o"
  "CMakeFiles/bench_fig1_mips.dir/bench_fig1_mips.cpp.o.d"
  "bench_fig1_mips"
  "bench_fig1_mips.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_mips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig1_mips.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_baseline_gsm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_gsm.dir/bench_baseline_gsm.cpp.o"
  "CMakeFiles/bench_baseline_gsm.dir/bench_baseline_gsm.cpp.o.d"
  "bench_baseline_gsm"
  "bench_baseline_gsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_gsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_rate_mobility.dir/bench_fig2_rate_mobility.cpp.o"
  "CMakeFiles/bench_fig2_rate_mobility.dir/bench_fig2_rate_mobility.cpp.o.d"
  "bench_fig2_rate_mobility"
  "bench_fig2_rate_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_rate_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig2_rate_mobility.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_reconfig.dir/bench_fig10_reconfig.cpp.o"
  "CMakeFiles/bench_fig10_reconfig.dir/bench_fig10_reconfig.cpp.o.d"
  "bench_fig10_reconfig"
  "bench_fig10_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

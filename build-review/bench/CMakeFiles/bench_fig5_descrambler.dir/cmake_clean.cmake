file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_descrambler.dir/bench_fig5_descrambler.cpp.o"
  "CMakeFiles/bench_fig5_descrambler.dir/bench_fig5_descrambler.cpp.o.d"
  "bench_fig5_descrambler"
  "bench_fig5_descrambler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_descrambler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig11_board.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_board.dir/bench_fig11_board.cpp.o"
  "CMakeFiles/bench_fig11_board.dir/bench_fig11_board.cpp.o.d"
  "bench_fig11_board"
  "bench_fig11_board.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_board.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

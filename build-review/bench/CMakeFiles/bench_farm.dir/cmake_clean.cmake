file(REMOVE_RECURSE
  "CMakeFiles/bench_farm.dir/bench_farm.cpp.o"
  "CMakeFiles/bench_farm.dir/bench_farm.cpp.o.d"
  "bench_farm"
  "bench_farm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_farm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_compiled.dir/bench_compiled.cpp.o"
  "CMakeFiles/bench_compiled.dir/bench_compiled.cpp.o.d"
  "bench_compiled"
  "bench_compiled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compiled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_compiled.
# This may be replaced when dependencies are built.

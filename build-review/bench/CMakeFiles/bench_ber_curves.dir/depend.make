# Empty dependencies file for bench_ber_curves.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ber_curves.dir/bench_ber_curves.cpp.o"
  "CMakeFiles/bench_ber_curves.dir/bench_ber_curves.cpp.o.d"
  "bench_ber_curves"
  "bench_ber_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ber_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig4_partitioning.
# This may be replaced when dependencies are built.

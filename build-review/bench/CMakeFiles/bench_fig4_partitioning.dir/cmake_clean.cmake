file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_partitioning.dir/bench_fig4_partitioning.cpp.o"
  "CMakeFiles/bench_fig4_partitioning.dir/bench_fig4_partitioning.cpp.o.d"
  "bench_fig4_partitioning"
  "bench_fig4_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

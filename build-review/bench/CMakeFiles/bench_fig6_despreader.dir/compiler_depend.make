# Empty compiler generated dependencies file for bench_fig6_despreader.
# This may be replaced when dependencies are built.

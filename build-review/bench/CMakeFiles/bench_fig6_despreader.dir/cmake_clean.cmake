file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_despreader.dir/bench_fig6_despreader.cpp.o"
  "CMakeFiles/bench_fig6_despreader.dir/bench_fig6_despreader.cpp.o.d"
  "bench_fig6_despreader"
  "bench_fig6_despreader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_despreader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_fingers.dir/bench_table1_fingers.cpp.o"
  "CMakeFiles/bench_table1_fingers.dir/bench_table1_fingers.cpp.o.d"
  "bench_table1_fingers"
  "bench_table1_fingers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_fingers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig3_designflow.
# This may be replaced when dependencies are built.

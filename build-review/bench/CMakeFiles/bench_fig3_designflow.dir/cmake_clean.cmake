file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_designflow.dir/bench_fig3_designflow.cpp.o"
  "CMakeFiles/bench_fig3_designflow.dir/bench_fig3_designflow.cpp.o.d"
  "bench_fig3_designflow"
  "bench_fig3_designflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_designflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

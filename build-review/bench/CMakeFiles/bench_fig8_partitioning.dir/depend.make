# Empty dependencies file for bench_fig8_partitioning.
# This may be replaced when dependencies are built.

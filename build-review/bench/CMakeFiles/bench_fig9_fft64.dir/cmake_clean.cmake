file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_fft64.dir/bench_fig9_fft64.cpp.o"
  "CMakeFiles/bench_fig9_fft64.dir/bench_fig9_fft64.cpp.o.d"
  "bench_fig9_fft64"
  "bench_fig9_fft64.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_fft64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

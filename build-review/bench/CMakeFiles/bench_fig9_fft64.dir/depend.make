# Empty dependencies file for bench_fig9_fft64.
# This may be replaced when dependencies are built.

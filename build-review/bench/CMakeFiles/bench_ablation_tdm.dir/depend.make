# Empty dependencies file for bench_ablation_tdm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tdm.dir/bench_ablation_tdm.cpp.o"
  "CMakeFiles/bench_ablation_tdm.dir/bench_ablation_tdm.cpp.o.d"
  "bench_ablation_tdm"
  "bench_ablation_tdm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

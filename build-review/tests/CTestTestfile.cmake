# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/test_common[1]_include.cmake")
include("/root/repo/build-review/tests/test_xpp[1]_include.cmake")
include("/root/repo/build-review/tests/test_sched[1]_include.cmake")
include("/root/repo/build-review/tests/test_dedhw[1]_include.cmake")
include("/root/repo/build-review/tests/test_phy[1]_include.cmake")
include("/root/repo/build-review/tests/test_rake[1]_include.cmake")
include("/root/repo/build-review/tests/test_ofdm[1]_include.cmake")
include("/root/repo/build-review/tests/test_sdr[1]_include.cmake")
include("/root/repo/build-review/tests/test_dsp[1]_include.cmake")
include("/root/repo/build-review/tests/test_gsm[1]_include.cmake")
include("/root/repo/build-review/tests/test_fault[1]_include.cmake")
include("/root/repo/build-review/tests/test_trace[1]_include.cmake")
include("/root/repo/build-review/tests/test_farm[1]_include.cmake")
include("/root/repo/build-review/tests/test_snapshot[1]_include.cmake")
include("/root/repo/build-review/tests/test_batch[1]_include.cmake")
include("/root/repo/build-review/tests/test_report[1]_include.cmake")

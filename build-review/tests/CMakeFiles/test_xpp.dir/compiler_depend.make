# Empty compiler generated dependencies file for test_xpp.
# This may be replaced when dependencies are built.

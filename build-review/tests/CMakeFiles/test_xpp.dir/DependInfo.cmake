
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/xpp/test_alu.cpp" "tests/CMakeFiles/test_xpp.dir/xpp/test_alu.cpp.o" "gcc" "tests/CMakeFiles/test_xpp.dir/xpp/test_alu.cpp.o.d"
  "/root/repo/tests/xpp/test_alu_boundaries.cpp" "tests/CMakeFiles/test_xpp.dir/xpp/test_alu_boundaries.cpp.o" "gcc" "tests/CMakeFiles/test_xpp.dir/xpp/test_alu_boundaries.cpp.o.d"
  "/root/repo/tests/xpp/test_alu_rounding.cpp" "tests/CMakeFiles/test_xpp.dir/xpp/test_alu_rounding.cpp.o" "gcc" "tests/CMakeFiles/test_xpp.dir/xpp/test_alu_rounding.cpp.o.d"
  "/root/repo/tests/xpp/test_array.cpp" "tests/CMakeFiles/test_xpp.dir/xpp/test_array.cpp.o" "gcc" "tests/CMakeFiles/test_xpp.dir/xpp/test_array.cpp.o.d"
  "/root/repo/tests/xpp/test_builder.cpp" "tests/CMakeFiles/test_xpp.dir/xpp/test_builder.cpp.o" "gcc" "tests/CMakeFiles/test_xpp.dir/xpp/test_builder.cpp.o.d"
  "/root/repo/tests/xpp/test_builder_fuzz.cpp" "tests/CMakeFiles/test_xpp.dir/xpp/test_builder_fuzz.cpp.o" "gcc" "tests/CMakeFiles/test_xpp.dir/xpp/test_builder_fuzz.cpp.o.d"
  "/root/repo/tests/xpp/test_counter.cpp" "tests/CMakeFiles/test_xpp.dir/xpp/test_counter.cpp.o" "gcc" "tests/CMakeFiles/test_xpp.dir/xpp/test_counter.cpp.o.d"
  "/root/repo/tests/xpp/test_macros.cpp" "tests/CMakeFiles/test_xpp.dir/xpp/test_macros.cpp.o" "gcc" "tests/CMakeFiles/test_xpp.dir/xpp/test_macros.cpp.o.d"
  "/root/repo/tests/xpp/test_manager.cpp" "tests/CMakeFiles/test_xpp.dir/xpp/test_manager.cpp.o" "gcc" "tests/CMakeFiles/test_xpp.dir/xpp/test_manager.cpp.o.d"
  "/root/repo/tests/xpp/test_net.cpp" "tests/CMakeFiles/test_xpp.dir/xpp/test_net.cpp.o" "gcc" "tests/CMakeFiles/test_xpp.dir/xpp/test_net.cpp.o.d"
  "/root/repo/tests/xpp/test_nml.cpp" "tests/CMakeFiles/test_xpp.dir/xpp/test_nml.cpp.o" "gcc" "tests/CMakeFiles/test_xpp.dir/xpp/test_nml.cpp.o.d"
  "/root/repo/tests/xpp/test_nml_assets.cpp" "tests/CMakeFiles/test_xpp.dir/xpp/test_nml_assets.cpp.o" "gcc" "tests/CMakeFiles/test_xpp.dir/xpp/test_nml_assets.cpp.o.d"
  "/root/repo/tests/xpp/test_nml_equiv.cpp" "tests/CMakeFiles/test_xpp.dir/xpp/test_nml_equiv.cpp.o" "gcc" "tests/CMakeFiles/test_xpp.dir/xpp/test_nml_equiv.cpp.o.d"
  "/root/repo/tests/xpp/test_pipeline.cpp" "tests/CMakeFiles/test_xpp.dir/xpp/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/test_xpp.dir/xpp/test_pipeline.cpp.o.d"
  "/root/repo/tests/xpp/test_ram.cpp" "tests/CMakeFiles/test_xpp.dir/xpp/test_ram.cpp.o" "gcc" "tests/CMakeFiles/test_xpp.dir/xpp/test_ram.cpp.o.d"
  "/root/repo/tests/xpp/test_stress.cpp" "tests/CMakeFiles/test_xpp.dir/xpp/test_stress.cpp.o" "gcc" "tests/CMakeFiles/test_xpp.dir/xpp/test_stress.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/farm/CMakeFiles/rsp_farm.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sdr/CMakeFiles/rsp_sdr.dir/DependInfo.cmake"
  "/root/repo/build-review/src/rake/CMakeFiles/rsp_rake.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ofdm/CMakeFiles/rsp_ofdm.dir/DependInfo.cmake"
  "/root/repo/build-review/src/gsm/CMakeFiles/rsp_gsm.dir/DependInfo.cmake"
  "/root/repo/build-review/src/phy/CMakeFiles/rsp_phy.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dedhw/CMakeFiles/rsp_dedhw.dir/DependInfo.cmake"
  "/root/repo/build-review/src/xpp/CMakeFiles/rsp_xpp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/rsp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

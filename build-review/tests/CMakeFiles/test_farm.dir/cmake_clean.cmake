file(REMOVE_RECURSE
  "CMakeFiles/test_farm.dir/common/test_rng_split.cpp.o"
  "CMakeFiles/test_farm.dir/common/test_rng_split.cpp.o.d"
  "CMakeFiles/test_farm.dir/farm/test_farm_batch.cpp.o"
  "CMakeFiles/test_farm.dir/farm/test_farm_batch.cpp.o.d"
  "CMakeFiles/test_farm.dir/farm/test_farm_determinism.cpp.o"
  "CMakeFiles/test_farm.dir/farm/test_farm_determinism.cpp.o.d"
  "CMakeFiles/test_farm.dir/farm/test_resilient.cpp.o"
  "CMakeFiles/test_farm.dir/farm/test_resilient.cpp.o.d"
  "test_farm"
  "test_farm.pdb"
  "test_farm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_dedhw.dir/dedhw/test_convcode.cpp.o"
  "CMakeFiles/test_dedhw.dir/dedhw/test_convcode.cpp.o.d"
  "CMakeFiles/test_dedhw.dir/dedhw/test_convcode_gen.cpp.o"
  "CMakeFiles/test_dedhw.dir/dedhw/test_convcode_gen.cpp.o.d"
  "CMakeFiles/test_dedhw.dir/dedhw/test_crc.cpp.o"
  "CMakeFiles/test_dedhw.dir/dedhw/test_crc.cpp.o.d"
  "CMakeFiles/test_dedhw.dir/dedhw/test_ovsf.cpp.o"
  "CMakeFiles/test_dedhw.dir/dedhw/test_ovsf.cpp.o.d"
  "CMakeFiles/test_dedhw.dir/dedhw/test_umts_scrambler.cpp.o"
  "CMakeFiles/test_dedhw.dir/dedhw/test_umts_scrambler.cpp.o.d"
  "CMakeFiles/test_dedhw.dir/dedhw/test_viterbi.cpp.o"
  "CMakeFiles/test_dedhw.dir/dedhw/test_viterbi.cpp.o.d"
  "CMakeFiles/test_dedhw.dir/dedhw/test_wlan_scrambler.cpp.o"
  "CMakeFiles/test_dedhw.dir/dedhw/test_wlan_scrambler.cpp.o.d"
  "test_dedhw"
  "test_dedhw.pdb"
  "test_dedhw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dedhw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

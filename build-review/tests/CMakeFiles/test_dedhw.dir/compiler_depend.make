# Empty compiler generated dependencies file for test_dedhw.
# This may be replaced when dependencies are built.

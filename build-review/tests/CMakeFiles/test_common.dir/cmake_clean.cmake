file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/common/test_cplx.cpp.o"
  "CMakeFiles/test_common.dir/common/test_cplx.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_fnv.cpp.o"
  "CMakeFiles/test_common.dir/common/test_fnv.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_rng.cpp.o"
  "CMakeFiles/test_common.dir/common/test_rng.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_umbrella.cpp.o"
  "CMakeFiles/test_common.dir/common/test_umbrella.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_word.cpp.o"
  "CMakeFiles/test_common.dir/common/test_word.cpp.o.d"
  "test_common"
  "test_common.pdb"
  "test_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_sched.dir/xpp/test_compiled_equiv.cpp.o"
  "CMakeFiles/test_sched.dir/xpp/test_compiled_equiv.cpp.o.d"
  "CMakeFiles/test_sched.dir/xpp/test_sched_equiv.cpp.o"
  "CMakeFiles/test_sched.dir/xpp/test_sched_equiv.cpp.o.d"
  "test_sched"
  "test_sched.pdb"
  "test_sched[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_rake.dir/rake/test_agc.cpp.o"
  "CMakeFiles/test_rake.dir/rake/test_agc.cpp.o.d"
  "CMakeFiles/test_rake.dir/rake/test_golden.cpp.o"
  "CMakeFiles/test_rake.dir/rake/test_golden.cpp.o.d"
  "CMakeFiles/test_rake.dir/rake/test_maps.cpp.o"
  "CMakeFiles/test_rake.dir/rake/test_maps.cpp.o.d"
  "CMakeFiles/test_rake.dir/rake/test_multidch.cpp.o"
  "CMakeFiles/test_rake.dir/rake/test_multidch.cpp.o.d"
  "CMakeFiles/test_rake.dir/rake/test_receiver.cpp.o"
  "CMakeFiles/test_rake.dir/rake/test_receiver.cpp.o.d"
  "CMakeFiles/test_rake.dir/rake/test_robustness.cpp.o"
  "CMakeFiles/test_rake.dir/rake/test_robustness.cpp.o.d"
  "CMakeFiles/test_rake.dir/rake/test_scenario.cpp.o"
  "CMakeFiles/test_rake.dir/rake/test_scenario.cpp.o.d"
  "CMakeFiles/test_rake.dir/rake/test_search.cpp.o"
  "CMakeFiles/test_rake.dir/rake/test_search.cpp.o.d"
  "CMakeFiles/test_rake.dir/rake/test_tdm.cpp.o"
  "CMakeFiles/test_rake.dir/rake/test_tdm.cpp.o.d"
  "CMakeFiles/test_rake.dir/rake/test_tracked.cpp.o"
  "CMakeFiles/test_rake.dir/rake/test_tracked.cpp.o.d"
  "CMakeFiles/test_rake.dir/rake/test_transport.cpp.o"
  "CMakeFiles/test_rake.dir/rake/test_transport.cpp.o.d"
  "test_rake"
  "test_rake.pdb"
  "test_rake[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_rake.
# This may be replaced when dependencies are built.

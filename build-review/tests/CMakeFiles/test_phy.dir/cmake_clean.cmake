file(REMOVE_RECURSE
  "CMakeFiles/test_phy.dir/phy/test_channel.cpp.o"
  "CMakeFiles/test_phy.dir/phy/test_channel.cpp.o.d"
  "CMakeFiles/test_phy.dir/phy/test_fft.cpp.o"
  "CMakeFiles/test_phy.dir/phy/test_fft.cpp.o.d"
  "CMakeFiles/test_phy.dir/phy/test_interleaver.cpp.o"
  "CMakeFiles/test_phy.dir/phy/test_interleaver.cpp.o.d"
  "CMakeFiles/test_phy.dir/phy/test_jakes.cpp.o"
  "CMakeFiles/test_phy.dir/phy/test_jakes.cpp.o.d"
  "CMakeFiles/test_phy.dir/phy/test_modulation.cpp.o"
  "CMakeFiles/test_phy.dir/phy/test_modulation.cpp.o.d"
  "CMakeFiles/test_phy.dir/phy/test_ofdm_tx.cpp.o"
  "CMakeFiles/test_phy.dir/phy/test_ofdm_tx.cpp.o.d"
  "CMakeFiles/test_phy.dir/phy/test_theory.cpp.o"
  "CMakeFiles/test_phy.dir/phy/test_theory.cpp.o.d"
  "CMakeFiles/test_phy.dir/phy/test_umts_tx.cpp.o"
  "CMakeFiles/test_phy.dir/phy/test_umts_tx.cpp.o.d"
  "test_phy"
  "test_phy.pdb"
  "test_phy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_fault.dir/ofdm/test_fault_seu.cpp.o"
  "CMakeFiles/test_fault.dir/ofdm/test_fault_seu.cpp.o.d"
  "CMakeFiles/test_fault.dir/rake/test_fault_degradation.cpp.o"
  "CMakeFiles/test_fault.dir/rake/test_fault_degradation.cpp.o.d"
  "CMakeFiles/test_fault.dir/xpp/test_fault.cpp.o"
  "CMakeFiles/test_fault.dir/xpp/test_fault.cpp.o.d"
  "CMakeFiles/test_fault.dir/xpp/test_stall.cpp.o"
  "CMakeFiles/test_fault.dir/xpp/test_stall.cpp.o.d"
  "CMakeFiles/test_fault.dir/xpp/test_txn_load.cpp.o"
  "CMakeFiles/test_fault.dir/xpp/test_txn_load.cpp.o.d"
  "test_fault"
  "test_fault.pdb"
  "test_fault[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

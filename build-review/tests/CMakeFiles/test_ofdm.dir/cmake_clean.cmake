file(REMOVE_RECURSE
  "CMakeFiles/test_ofdm.dir/ofdm/test_cfo.cpp.o"
  "CMakeFiles/test_ofdm.dir/ofdm/test_cfo.cpp.o.d"
  "CMakeFiles/test_ofdm.dir/ofdm/test_e2e.cpp.o"
  "CMakeFiles/test_ofdm.dir/ofdm/test_e2e.cpp.o.d"
  "CMakeFiles/test_ofdm.dir/ofdm/test_golden.cpp.o"
  "CMakeFiles/test_ofdm.dir/ofdm/test_golden.cpp.o.d"
  "CMakeFiles/test_ofdm.dir/ofdm/test_maps.cpp.o"
  "CMakeFiles/test_ofdm.dir/ofdm/test_maps.cpp.o.d"
  "CMakeFiles/test_ofdm.dir/ofdm/test_robustness.cpp.o"
  "CMakeFiles/test_ofdm.dir/ofdm/test_robustness.cpp.o.d"
  "CMakeFiles/test_ofdm.dir/ofdm/test_signal.cpp.o"
  "CMakeFiles/test_ofdm.dir/ofdm/test_signal.cpp.o.d"
  "test_ofdm"
  "test_ofdm.pdb"
  "test_ofdm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ofdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_gsm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_gsm.dir/gsm/test_burst.cpp.o"
  "CMakeFiles/test_gsm.dir/gsm/test_burst.cpp.o.d"
  "CMakeFiles/test_gsm.dir/gsm/test_equalizer.cpp.o"
  "CMakeFiles/test_gsm.dir/gsm/test_equalizer.cpp.o.d"
  "test_gsm"
  "test_gsm.pdb"
  "test_gsm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for rsp_dedhw.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dedhw/convcode.cpp" "src/dedhw/CMakeFiles/rsp_dedhw.dir/convcode.cpp.o" "gcc" "src/dedhw/CMakeFiles/rsp_dedhw.dir/convcode.cpp.o.d"
  "/root/repo/src/dedhw/convcode_gen.cpp" "src/dedhw/CMakeFiles/rsp_dedhw.dir/convcode_gen.cpp.o" "gcc" "src/dedhw/CMakeFiles/rsp_dedhw.dir/convcode_gen.cpp.o.d"
  "/root/repo/src/dedhw/ovsf.cpp" "src/dedhw/CMakeFiles/rsp_dedhw.dir/ovsf.cpp.o" "gcc" "src/dedhw/CMakeFiles/rsp_dedhw.dir/ovsf.cpp.o.d"
  "/root/repo/src/dedhw/umts_scrambler.cpp" "src/dedhw/CMakeFiles/rsp_dedhw.dir/umts_scrambler.cpp.o" "gcc" "src/dedhw/CMakeFiles/rsp_dedhw.dir/umts_scrambler.cpp.o.d"
  "/root/repo/src/dedhw/viterbi.cpp" "src/dedhw/CMakeFiles/rsp_dedhw.dir/viterbi.cpp.o" "gcc" "src/dedhw/CMakeFiles/rsp_dedhw.dir/viterbi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/rsp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

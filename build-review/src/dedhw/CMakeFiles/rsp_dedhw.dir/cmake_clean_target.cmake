file(REMOVE_RECURSE
  "librsp_dedhw.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/rsp_dedhw.dir/convcode.cpp.o"
  "CMakeFiles/rsp_dedhw.dir/convcode.cpp.o.d"
  "CMakeFiles/rsp_dedhw.dir/convcode_gen.cpp.o"
  "CMakeFiles/rsp_dedhw.dir/convcode_gen.cpp.o.d"
  "CMakeFiles/rsp_dedhw.dir/ovsf.cpp.o"
  "CMakeFiles/rsp_dedhw.dir/ovsf.cpp.o.d"
  "CMakeFiles/rsp_dedhw.dir/umts_scrambler.cpp.o"
  "CMakeFiles/rsp_dedhw.dir/umts_scrambler.cpp.o.d"
  "CMakeFiles/rsp_dedhw.dir/viterbi.cpp.o"
  "CMakeFiles/rsp_dedhw.dir/viterbi.cpp.o.d"
  "librsp_dedhw.a"
  "librsp_dedhw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsp_dedhw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

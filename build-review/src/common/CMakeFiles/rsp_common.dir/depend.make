# Empty dependencies file for rsp_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rsp_common.dir/rng.cpp.o"
  "CMakeFiles/rsp_common.dir/rng.cpp.o.d"
  "CMakeFiles/rsp_common.dir/word.cpp.o"
  "CMakeFiles/rsp_common.dir/word.cpp.o.d"
  "librsp_common.a"
  "librsp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

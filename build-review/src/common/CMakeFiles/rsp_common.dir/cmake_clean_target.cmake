file(REMOVE_RECURSE
  "librsp_common.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/farm/farm.cpp" "src/farm/CMakeFiles/rsp_farm.dir/farm.cpp.o" "gcc" "src/farm/CMakeFiles/rsp_farm.dir/farm.cpp.o.d"
  "/root/repo/src/farm/kernels.cpp" "src/farm/CMakeFiles/rsp_farm.dir/kernels.cpp.o" "gcc" "src/farm/CMakeFiles/rsp_farm.dir/kernels.cpp.o.d"
  "/root/repo/src/farm/resilient.cpp" "src/farm/CMakeFiles/rsp_farm.dir/resilient.cpp.o" "gcc" "src/farm/CMakeFiles/rsp_farm.dir/resilient.cpp.o.d"
  "/root/repo/src/farm/stats.cpp" "src/farm/CMakeFiles/rsp_farm.dir/stats.cpp.o" "gcc" "src/farm/CMakeFiles/rsp_farm.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/xpp/CMakeFiles/rsp_xpp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/rake/CMakeFiles/rsp_rake.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ofdm/CMakeFiles/rsp_ofdm.dir/DependInfo.cmake"
  "/root/repo/build-review/src/phy/CMakeFiles/rsp_phy.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dedhw/CMakeFiles/rsp_dedhw.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/rsp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/rsp_farm.dir/farm.cpp.o"
  "CMakeFiles/rsp_farm.dir/farm.cpp.o.d"
  "CMakeFiles/rsp_farm.dir/kernels.cpp.o"
  "CMakeFiles/rsp_farm.dir/kernels.cpp.o.d"
  "CMakeFiles/rsp_farm.dir/resilient.cpp.o"
  "CMakeFiles/rsp_farm.dir/resilient.cpp.o.d"
  "CMakeFiles/rsp_farm.dir/stats.cpp.o"
  "CMakeFiles/rsp_farm.dir/stats.cpp.o.d"
  "librsp_farm.a"
  "librsp_farm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsp_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

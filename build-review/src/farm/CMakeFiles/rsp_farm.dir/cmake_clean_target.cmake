file(REMOVE_RECURSE
  "librsp_farm.a"
)

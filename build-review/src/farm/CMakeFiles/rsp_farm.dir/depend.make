# Empty dependencies file for rsp_farm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librsp_phy.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/channel.cpp" "src/phy/CMakeFiles/rsp_phy.dir/channel.cpp.o" "gcc" "src/phy/CMakeFiles/rsp_phy.dir/channel.cpp.o.d"
  "/root/repo/src/phy/fft.cpp" "src/phy/CMakeFiles/rsp_phy.dir/fft.cpp.o" "gcc" "src/phy/CMakeFiles/rsp_phy.dir/fft.cpp.o.d"
  "/root/repo/src/phy/jakes.cpp" "src/phy/CMakeFiles/rsp_phy.dir/jakes.cpp.o" "gcc" "src/phy/CMakeFiles/rsp_phy.dir/jakes.cpp.o.d"
  "/root/repo/src/phy/modulation.cpp" "src/phy/CMakeFiles/rsp_phy.dir/modulation.cpp.o" "gcc" "src/phy/CMakeFiles/rsp_phy.dir/modulation.cpp.o.d"
  "/root/repo/src/phy/ofdm_tx.cpp" "src/phy/CMakeFiles/rsp_phy.dir/ofdm_tx.cpp.o" "gcc" "src/phy/CMakeFiles/rsp_phy.dir/ofdm_tx.cpp.o.d"
  "/root/repo/src/phy/umts_tx.cpp" "src/phy/CMakeFiles/rsp_phy.dir/umts_tx.cpp.o" "gcc" "src/phy/CMakeFiles/rsp_phy.dir/umts_tx.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/rsp_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dedhw/CMakeFiles/rsp_dedhw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for rsp_phy.
# This may be replaced when dependencies are built.

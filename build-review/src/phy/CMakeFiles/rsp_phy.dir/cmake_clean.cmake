file(REMOVE_RECURSE
  "CMakeFiles/rsp_phy.dir/channel.cpp.o"
  "CMakeFiles/rsp_phy.dir/channel.cpp.o.d"
  "CMakeFiles/rsp_phy.dir/fft.cpp.o"
  "CMakeFiles/rsp_phy.dir/fft.cpp.o.d"
  "CMakeFiles/rsp_phy.dir/jakes.cpp.o"
  "CMakeFiles/rsp_phy.dir/jakes.cpp.o.d"
  "CMakeFiles/rsp_phy.dir/modulation.cpp.o"
  "CMakeFiles/rsp_phy.dir/modulation.cpp.o.d"
  "CMakeFiles/rsp_phy.dir/ofdm_tx.cpp.o"
  "CMakeFiles/rsp_phy.dir/ofdm_tx.cpp.o.d"
  "CMakeFiles/rsp_phy.dir/umts_tx.cpp.o"
  "CMakeFiles/rsp_phy.dir/umts_tx.cpp.o.d"
  "librsp_phy.a"
  "librsp_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsp_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gsm/burst.cpp" "src/gsm/CMakeFiles/rsp_gsm.dir/burst.cpp.o" "gcc" "src/gsm/CMakeFiles/rsp_gsm.dir/burst.cpp.o.d"
  "/root/repo/src/gsm/equalizer.cpp" "src/gsm/CMakeFiles/rsp_gsm.dir/equalizer.cpp.o" "gcc" "src/gsm/CMakeFiles/rsp_gsm.dir/equalizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/rsp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

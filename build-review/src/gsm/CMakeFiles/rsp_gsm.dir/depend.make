# Empty dependencies file for rsp_gsm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librsp_gsm.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/rsp_gsm.dir/burst.cpp.o"
  "CMakeFiles/rsp_gsm.dir/burst.cpp.o.d"
  "CMakeFiles/rsp_gsm.dir/equalizer.cpp.o"
  "CMakeFiles/rsp_gsm.dir/equalizer.cpp.o.d"
  "librsp_gsm.a"
  "librsp_gsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsp_gsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xpp/alu.cpp" "src/xpp/CMakeFiles/rsp_xpp.dir/alu.cpp.o" "gcc" "src/xpp/CMakeFiles/rsp_xpp.dir/alu.cpp.o.d"
  "/root/repo/src/xpp/array.cpp" "src/xpp/CMakeFiles/rsp_xpp.dir/array.cpp.o" "gcc" "src/xpp/CMakeFiles/rsp_xpp.dir/array.cpp.o.d"
  "/root/repo/src/xpp/batch.cpp" "src/xpp/CMakeFiles/rsp_xpp.dir/batch.cpp.o" "gcc" "src/xpp/CMakeFiles/rsp_xpp.dir/batch.cpp.o.d"
  "/root/repo/src/xpp/builder.cpp" "src/xpp/CMakeFiles/rsp_xpp.dir/builder.cpp.o" "gcc" "src/xpp/CMakeFiles/rsp_xpp.dir/builder.cpp.o.d"
  "/root/repo/src/xpp/compiled.cpp" "src/xpp/CMakeFiles/rsp_xpp.dir/compiled.cpp.o" "gcc" "src/xpp/CMakeFiles/rsp_xpp.dir/compiled.cpp.o.d"
  "/root/repo/src/xpp/fault.cpp" "src/xpp/CMakeFiles/rsp_xpp.dir/fault.cpp.o" "gcc" "src/xpp/CMakeFiles/rsp_xpp.dir/fault.cpp.o.d"
  "/root/repo/src/xpp/manager.cpp" "src/xpp/CMakeFiles/rsp_xpp.dir/manager.cpp.o" "gcc" "src/xpp/CMakeFiles/rsp_xpp.dir/manager.cpp.o.d"
  "/root/repo/src/xpp/net.cpp" "src/xpp/CMakeFiles/rsp_xpp.dir/net.cpp.o" "gcc" "src/xpp/CMakeFiles/rsp_xpp.dir/net.cpp.o.d"
  "/root/repo/src/xpp/nml.cpp" "src/xpp/CMakeFiles/rsp_xpp.dir/nml.cpp.o" "gcc" "src/xpp/CMakeFiles/rsp_xpp.dir/nml.cpp.o.d"
  "/root/repo/src/xpp/ram.cpp" "src/xpp/CMakeFiles/rsp_xpp.dir/ram.cpp.o" "gcc" "src/xpp/CMakeFiles/rsp_xpp.dir/ram.cpp.o.d"
  "/root/repo/src/xpp/runner.cpp" "src/xpp/CMakeFiles/rsp_xpp.dir/runner.cpp.o" "gcc" "src/xpp/CMakeFiles/rsp_xpp.dir/runner.cpp.o.d"
  "/root/repo/src/xpp/sim.cpp" "src/xpp/CMakeFiles/rsp_xpp.dir/sim.cpp.o" "gcc" "src/xpp/CMakeFiles/rsp_xpp.dir/sim.cpp.o.d"
  "/root/repo/src/xpp/simd.cpp" "src/xpp/CMakeFiles/rsp_xpp.dir/simd.cpp.o" "gcc" "src/xpp/CMakeFiles/rsp_xpp.dir/simd.cpp.o.d"
  "/root/repo/src/xpp/simd_avx2.cpp" "src/xpp/CMakeFiles/rsp_xpp.dir/simd_avx2.cpp.o" "gcc" "src/xpp/CMakeFiles/rsp_xpp.dir/simd_avx2.cpp.o.d"
  "/root/repo/src/xpp/snapshot.cpp" "src/xpp/CMakeFiles/rsp_xpp.dir/snapshot.cpp.o" "gcc" "src/xpp/CMakeFiles/rsp_xpp.dir/snapshot.cpp.o.d"
  "/root/repo/src/xpp/trace.cpp" "src/xpp/CMakeFiles/rsp_xpp.dir/trace.cpp.o" "gcc" "src/xpp/CMakeFiles/rsp_xpp.dir/trace.cpp.o.d"
  "/root/repo/src/xpp/types.cpp" "src/xpp/CMakeFiles/rsp_xpp.dir/types.cpp.o" "gcc" "src/xpp/CMakeFiles/rsp_xpp.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/rsp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "librsp_xpp.a"
)

# Empty dependencies file for rsp_xpp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librsp_rake.a"
)

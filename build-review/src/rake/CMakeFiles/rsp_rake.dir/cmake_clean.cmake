file(REMOVE_RECURSE
  "CMakeFiles/rsp_rake.dir/agc.cpp.o"
  "CMakeFiles/rsp_rake.dir/agc.cpp.o.d"
  "CMakeFiles/rsp_rake.dir/golden.cpp.o"
  "CMakeFiles/rsp_rake.dir/golden.cpp.o.d"
  "CMakeFiles/rsp_rake.dir/maps.cpp.o"
  "CMakeFiles/rsp_rake.dir/maps.cpp.o.d"
  "CMakeFiles/rsp_rake.dir/multidch.cpp.o"
  "CMakeFiles/rsp_rake.dir/multidch.cpp.o.d"
  "CMakeFiles/rsp_rake.dir/receiver.cpp.o"
  "CMakeFiles/rsp_rake.dir/receiver.cpp.o.d"
  "CMakeFiles/rsp_rake.dir/scenario.cpp.o"
  "CMakeFiles/rsp_rake.dir/scenario.cpp.o.d"
  "CMakeFiles/rsp_rake.dir/search.cpp.o"
  "CMakeFiles/rsp_rake.dir/search.cpp.o.d"
  "CMakeFiles/rsp_rake.dir/tdm.cpp.o"
  "CMakeFiles/rsp_rake.dir/tdm.cpp.o.d"
  "CMakeFiles/rsp_rake.dir/transport.cpp.o"
  "CMakeFiles/rsp_rake.dir/transport.cpp.o.d"
  "librsp_rake.a"
  "librsp_rake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsp_rake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

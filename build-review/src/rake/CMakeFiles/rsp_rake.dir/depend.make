# Empty dependencies file for rsp_rake.
# This may be replaced when dependencies are built.

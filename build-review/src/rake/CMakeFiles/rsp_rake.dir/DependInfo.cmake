
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rake/agc.cpp" "src/rake/CMakeFiles/rsp_rake.dir/agc.cpp.o" "gcc" "src/rake/CMakeFiles/rsp_rake.dir/agc.cpp.o.d"
  "/root/repo/src/rake/golden.cpp" "src/rake/CMakeFiles/rsp_rake.dir/golden.cpp.o" "gcc" "src/rake/CMakeFiles/rsp_rake.dir/golden.cpp.o.d"
  "/root/repo/src/rake/maps.cpp" "src/rake/CMakeFiles/rsp_rake.dir/maps.cpp.o" "gcc" "src/rake/CMakeFiles/rsp_rake.dir/maps.cpp.o.d"
  "/root/repo/src/rake/multidch.cpp" "src/rake/CMakeFiles/rsp_rake.dir/multidch.cpp.o" "gcc" "src/rake/CMakeFiles/rsp_rake.dir/multidch.cpp.o.d"
  "/root/repo/src/rake/receiver.cpp" "src/rake/CMakeFiles/rsp_rake.dir/receiver.cpp.o" "gcc" "src/rake/CMakeFiles/rsp_rake.dir/receiver.cpp.o.d"
  "/root/repo/src/rake/scenario.cpp" "src/rake/CMakeFiles/rsp_rake.dir/scenario.cpp.o" "gcc" "src/rake/CMakeFiles/rsp_rake.dir/scenario.cpp.o.d"
  "/root/repo/src/rake/search.cpp" "src/rake/CMakeFiles/rsp_rake.dir/search.cpp.o" "gcc" "src/rake/CMakeFiles/rsp_rake.dir/search.cpp.o.d"
  "/root/repo/src/rake/tdm.cpp" "src/rake/CMakeFiles/rsp_rake.dir/tdm.cpp.o" "gcc" "src/rake/CMakeFiles/rsp_rake.dir/tdm.cpp.o.d"
  "/root/repo/src/rake/transport.cpp" "src/rake/CMakeFiles/rsp_rake.dir/transport.cpp.o" "gcc" "src/rake/CMakeFiles/rsp_rake.dir/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/rsp_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dedhw/CMakeFiles/rsp_dedhw.dir/DependInfo.cmake"
  "/root/repo/build-review/src/phy/CMakeFiles/rsp_phy.dir/DependInfo.cmake"
  "/root/repo/build-review/src/xpp/CMakeFiles/rsp_xpp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for rsp_ofdm.
# This may be replaced when dependencies are built.

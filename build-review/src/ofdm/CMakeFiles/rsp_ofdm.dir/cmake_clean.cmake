file(REMOVE_RECURSE
  "CMakeFiles/rsp_ofdm.dir/golden.cpp.o"
  "CMakeFiles/rsp_ofdm.dir/golden.cpp.o.d"
  "CMakeFiles/rsp_ofdm.dir/maps.cpp.o"
  "CMakeFiles/rsp_ofdm.dir/maps.cpp.o.d"
  "librsp_ofdm.a"
  "librsp_ofdm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsp_ofdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "librsp_ofdm.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ofdm/golden.cpp" "src/ofdm/CMakeFiles/rsp_ofdm.dir/golden.cpp.o" "gcc" "src/ofdm/CMakeFiles/rsp_ofdm.dir/golden.cpp.o.d"
  "/root/repo/src/ofdm/maps.cpp" "src/ofdm/CMakeFiles/rsp_ofdm.dir/maps.cpp.o" "gcc" "src/ofdm/CMakeFiles/rsp_ofdm.dir/maps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/rsp_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dedhw/CMakeFiles/rsp_dedhw.dir/DependInfo.cmake"
  "/root/repo/build-review/src/phy/CMakeFiles/rsp_phy.dir/DependInfo.cmake"
  "/root/repo/build-review/src/xpp/CMakeFiles/rsp_xpp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

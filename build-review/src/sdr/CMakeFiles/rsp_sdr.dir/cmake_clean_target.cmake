file(REMOVE_RECURSE
  "librsp_sdr.a"
)

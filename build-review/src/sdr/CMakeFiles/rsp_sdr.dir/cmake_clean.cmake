file(REMOVE_RECURSE
  "CMakeFiles/rsp_sdr.dir/area_model.cpp.o"
  "CMakeFiles/rsp_sdr.dir/area_model.cpp.o.d"
  "CMakeFiles/rsp_sdr.dir/board.cpp.o"
  "CMakeFiles/rsp_sdr.dir/board.cpp.o.d"
  "CMakeFiles/rsp_sdr.dir/mips_model.cpp.o"
  "CMakeFiles/rsp_sdr.dir/mips_model.cpp.o.d"
  "CMakeFiles/rsp_sdr.dir/partitioning.cpp.o"
  "CMakeFiles/rsp_sdr.dir/partitioning.cpp.o.d"
  "CMakeFiles/rsp_sdr.dir/rate_mobility.cpp.o"
  "CMakeFiles/rsp_sdr.dir/rate_mobility.cpp.o.d"
  "librsp_sdr.a"
  "librsp_sdr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsp_sdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

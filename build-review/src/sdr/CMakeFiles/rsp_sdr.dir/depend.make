# Empty dependencies file for rsp_sdr.
# This may be replaced when dependencies are built.

// Scenario-farm scaling: frames/s of the rake BER trial kernel vs
// worker-thread count, 1..hardware_concurrency (always including 1, 2
// and 4 so the 4-thread speedup is recorded even where
// hardware_concurrency is low — on an undersized host the >=3x target
// only materialises with >=4 physical cores).  Emits BENCH_farm.json
// and cross-checks that every thread count produced the bit-identical
// per-task results (the determinism battery proves the same in ctest).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/report.hpp"
#include "src/farm/farm.hpp"
#include "src/farm/kernels.hpp"

namespace {

using namespace rsp;

struct Point {
  int threads = 0;
  double frames_per_s = 0.0;
  double wall_s = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  bench::title("Scenario farm scaling — rake BER kernel, frames/s vs threads");

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<int> counts = {1, 2, 4};
  for (unsigned t = 8; t <= hw; t *= 2) counts.push_back(static_cast<int>(t));
  if (hw > 4 && std::find(counts.begin(), counts.end(),
                          static_cast<int>(hw)) == counts.end()) {
    counts.push_back(static_cast<int>(hw));
  }
  if (args.threads > 0) {
    // Operator override: sweep only the requested worker count (plus
    // the 1-thread baseline so the speedup column stays meaningful).
    counts = {1};
    if (args.threads != 1) counts.push_back(args.threads);
    bench::note("thread override: measuring " + std::to_string(args.threads) +
                " worker thread(s)");
  }

  farm::kernels::RakeTrial kernel;
  kernel.fingers = 3;
  kernel.esn0_db = 0.0;
  const std::size_t trials = args.smoke ? 24 : 200;
  constexpr std::uint64_t kBaseSeed = 100;

  const auto reference = farm::run_serial(
      trials, kBaseSeed,
      [&](std::uint64_t seed, std::size_t) { return kernel(seed); });

  // Substrate vs simulator wall-clock split (serial): the same trials
  // stopped after transmit+channel, so the ratio is the PHY-substrate
  // share of trial time (bench_phy measures the substrate kernels
  // themselves; this records how much of a farm campaign they are).
  farm::kernels::RakeTrial substrate_kernel = kernel;
  substrate_kernel.substrate_only = true;
  const auto substrate_run = farm::run_serial(
      trials, kBaseSeed,
      [&](std::uint64_t seed, std::size_t) { return substrate_kernel(seed); });
  const double substrate_frac =
      reference.wall_seconds > 0.0
          ? substrate_run.wall_seconds / reference.wall_seconds
          : 0.0;

  std::vector<Point> points;
  bool identical = true;
  bench::Table table({"threads", "frames/s", "speedup vs 1", "wall (s)"});
  double base_fps = 0.0;
  for (const int t : counts) {
    farm::FarmOptions opts;
    opts.threads = t;
    farm::ScenarioFarm f(opts);
    const auto res = f.run(trials, kBaseSeed, [&](std::uint64_t seed,
                                                  std::size_t) {
      return kernel(seed);
    });
    identical = identical && res.per_task == reference.per_task &&
                res.agg.total() == reference.agg.total();
    Point p;
    p.threads = t;
    p.frames_per_s = res.frames_per_second();
    p.wall_s = res.wall_seconds;
    if (t == 1) base_fps = p.frames_per_s;
    points.push_back(p);
    table.row({bench::fmt_int(t), bench::fmt(p.frames_per_s, 1),
               bench::fmt(base_fps > 0 ? p.frames_per_s / base_fps : 0, 2),
               bench::fmt(p.wall_s, 3)});
  }
  table.print();

  if (!identical) {
    std::fprintf(stderr,
                 "DIVERGENCE: farm results depend on thread count\n");
    return 1;
  }
  bench::note("per-task results bit-identical across all thread counts");
  bench::note("PHY substrate share of serial trial wall-clock: " +
              bench::fmt(substrate_frac, 2));
  if (hw < 4) {
    bench::note("note: only " + std::to_string(hw) +
                " hardware thread(s) — 4-thread speedup is reported but "
                "cannot exceed ~1x on this host");
  }

  std::string j;
  bench::appendf(j, "{\n  \"bench\": \"bench_farm\",\n");
  bench::appendf(j, "  %s,\n", bench::host_context_json().c_str());
  bench::appendf(j, "  \"kernel\": \"rake_ber_3finger_0dB\",\n");
  bench::appendf(j, "  \"unit\": \"frames_per_second\",\n");
  bench::appendf(j, "  \"trials\": %zu,\n", trials);
  bench::appendf(j, "  \"hardware_concurrency\": %u,\n", hw);
  bench::appendf(j, "  \"threads_override\": %d,\n", args.threads);
  bench::appendf(j, "  \"smoke\": %s,\n", args.smoke ? "true" : "false");
  bench::appendf(j, "  \"deterministic_across_threads\": true,\n");
  bench::appendf(j, "  \"substrate_frac_serial\": %s,\n",
                 bench::json_num(substrate_frac, 3).c_str());
  bench::appendf(j, "  \"scaling\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    bench::appendf(j,
                   "    {\"threads\": %d, \"frames_per_s\": %s, "
                   "\"speedup_vs_1\": %s, \"wall_s\": %s}%s\n",
                   p.threads, bench::json_num(p.frames_per_s, 1).c_str(),
                   bench::json_num(
                       base_fps > 0 ? p.frames_per_s / base_fps : 0.0, 2)
                       .c_str(),
                   bench::json_num(p.wall_s, 4).c_str(),
                   i + 1 < points.size() ? "," : "");
  }
  bench::appendf(j, "  ]\n}\n");
  if (!bench::write_json_checked("BENCH_farm.json", j)) return 1;
  bench::note("wrote BENCH_farm.json");
  return 0;
}

// Table 1: rake receiver finger scenarios.
//
// Enumerates the basestation x DCH x multipath matrix, reporting the
// virtual finger count and the clock the single time-multiplexed
// physical finger must run at (shaded cells in the paper = the
// scenarios that need the full 69.12 MHz).  Each feasible row is then
// *executed*: a TdmFinger with that many contexts processes a real
// soft-handover capture and its outputs are verified bit-exact against
// dedicated per-context fingers.
#include "bench/report.hpp"
#include "src/common/rng.hpp"
#include "src/phy/channel.hpp"
#include "src/phy/umts_tx.hpp"
#include "src/rake/maps.hpp"
#include "src/rake/receiver.hpp"
#include "src/rake/scenario.hpp"
#include "src/rake/tdm.hpp"
#include "src/xpp/manager.hpp"
#include "src/xpp/trace.hpp"

namespace {

using namespace rsp;

std::vector<CplxI> capture(int n_chips) {
  Rng rng(3);
  std::vector<std::vector<CplxF>> streams;
  for (int b = 0; b < 6; ++b) {
    phy::BasestationConfig bs;
    bs.scrambling_code = 16u * static_cast<std::uint32_t>(b + 1);
    bs.cpich_gain = 0.4;
    phy::DpchConfig ch;
    ch.sf = 32;
    ch.code_index = 5;
    ch.gain = 0.5;
    ch.bits.resize(64);
    for (auto& bit : ch.bits) bit = rng.bit() ? 1 : 0;
    bs.channels.push_back(ch);
    phy::UmtsDownlinkTx tx(bs);
    streams.push_back(tx.generate(n_chips)[0]);
  }
  auto rx = phy::combine_basestations(streams);
  rx = phy::awgn(rx, 12.0, rng);
  return rake::quantize_chips(rx, 180.0);
}

}  // namespace

int main(int argc, char** argv) {
  // Model-evaluation harness: already smoke-sized, so --smoke is
  // accepted (ctest -L perf) without changing the workload.
  (void)rsp::bench::parse_args(argc, argv);
  using namespace rsp;
  bench::title("Table 1 — rake receiver finger scenarios");

  const auto rx = capture(32 * 24);

  rake::RakeConfig rcfg;
  for (int b = 0; b < 6; ++b) {
    rcfg.scrambling_codes.push_back(16u * static_cast<std::uint32_t>(b + 1));
  }
  rcfg.sf = 32;
  rcfg.code_index = 5;
  rake::RakeReceiver reference(rcfg);

  bench::Table t({"BTS", "DCH", "multipaths", "virtual fingers",
                  "finger clock (MHz)", "fits 69.12 MHz", "full clock",
                  "TDM == dedicated"});
  for (const auto& s : rake::table1_scenarios()) {
    std::string verified = "-";
    if (s.feasible()) {
      // Build the context set for this scenario and execute it.
      std::vector<rake::TdmFinger::Context> contexts;
      for (int b = 0; b < s.basestations; ++b) {
        for (int d = 0; d < s.channels; ++d) {
          for (int p = 0; p < s.multipaths; ++p) {
            contexts.push_back({16u * static_cast<std::uint32_t>(b + 1),
                                2 * p, 32, 5});
          }
        }
      }
      rake::TdmFinger tdm(contexts);
      const auto tdm_out = tdm.process(rx);
      bool ok = true;
      for (std::size_t k = 0; k < contexts.size(); ++k) {
        const auto dedicated = reference.finger_despread(
            rx, contexts[k].scrambling_code, contexts[k].delay);
        ok = ok && (tdm_out[k] == dedicated);
      }
      verified = ok ? "OK" : "MISMATCH";
    }
    t.row({bench::fmt_int(s.basestations), bench::fmt_int(s.channels),
           bench::fmt_int(s.multipaths), bench::fmt_int(s.virtual_fingers()),
           bench::fmt(s.required_clock_hz() / 1e6, 2),
           s.feasible() ? "yes" : "NO",
           s.needs_full_clock() ? "<== 69.12" : "", verified});
  }
  t.print();

  // The finger resource table, regenerated from *measured* counters:
  // the same capture streamed through the array-mapped despreader
  // (Figure 6) with a tracer attached.  Per-PAE duty cycles are what
  // Table 1's one-physical-finger clock argument rests on — a finger
  // whose PAEs fire every cycle has no headroom for time-multiplexing.
  {
    xpp::ConfigurationManager mgr;
    xpp::Tracer tracer;
    mgr.sim().attach_trace(&tracer);
    (void)rake::maps::run_despreader(mgr, rx, rcfg.sf, rcfg.code_index);
    const auto pc = tracer.snapshot();
    bench::Table u({"despreader PAE", "kind", "cell", "fires", "fire %",
                    "stall-in %", "stall-out %", "idle %"});
    for (const auto& obj : pc.paes) {
      const double tc =
          obj.traced_cycles > 0 ? static_cast<double>(obj.traced_cycles) : 1.0;
      const auto pct = [&](long long v) {
        return bench::fmt(100.0 * static_cast<double>(v) / tc, 1);
      };
      u.row({obj.name, xpp::object_kind_name(obj.kind),
             obj.row < 0 ? std::string("i/o")
                         : "r" + std::to_string(obj.row) + "c" +
                               std::to_string(obj.col),
             bench::fmt_int(obj.fires), pct(obj.fires),
             pct(obj.stall_in_cycles), pct(obj.stall_out_cycles),
             pct(obj.idle_cycles)});
    }
    u.print();
    bench::note("measured per-PAE utilization of the Figure 6 despreader over "
                "the same capture\n(sf=" +
                std::to_string(rcfg.sf) + ", traced " +
                std::to_string(pc.traced_cycles()) + " cycles)");
  }

  bench::note(
      "\nShape check: the paper's maximum (6 BTS x 3 paths and\n"
      "3 BTS x 2 DCH x 3 paths) lands exactly at 18 fingers / 69.12 MHz;\n"
      "every feasible scenario's time-multiplexed single finger is\n"
      "bit-identical to dedicated per-finger hardware.");
  return 0;
}

// Batched cross-instance SIMD replay benchmark: instances/second of a
// fleet of identical terminals under
//  - per-instance scalar kCompiled replay (the PR-5 baseline), and
//  - lockstep SoA batched replay (src/xpp/batch.hpp) at several lane
//    widths,
// on three fleet workloads: the UMTS descrambler chip stream (period-1
// steady state, best case), the SF=16 despreader (guard deopt at every
// accumulator dump), and the FFT64 stage-0 pipeline (dense firing,
// feed boundaries between symbols).
//
// Every fleet is driven by the *same* boundary script in all modes —
// the feeds and the cycle quanta between them are identical, only who
// executes the cycles differs — so each lane's trajectory must be
// bit-identical.  The harness enforces this three ways per lane:
// batched kCompiled vs scalar kCompiled vs scalar kEventDriven, exact
// word-for-word output compare.  A perf number is only reported if the
// cross-check passed.  Emits BENCH_batch.json.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/report.hpp"
#include "src/common/rng.hpp"
#include "src/dedhw/umts_scrambler.hpp"
#include "src/ofdm/maps.hpp"
#include "src/rake/maps.hpp"
#include "src/xpp/batch.hpp"
#include "src/xpp/builder.hpp"
#include "src/xpp/manager.hpp"

namespace rsp {
namespace {

using Clock = std::chrono::steady_clock;

/// One terminal of a fleet: its own manager/simulator plus the
/// boundary script that drives it (feed, then run a fixed quantum).
struct Instance {
  std::unique_ptr<xpp::ConfigurationManager> mgr;
  xpp::ConfigId id = xpp::kNoConfig;
  std::uint32_t crc = 0;

  struct Step {
    std::function<void(Instance&)> feed;  ///< boundary work (may be empty)
    long long cycles = 0;                 ///< quantum to run afterwards
  };
  std::vector<Step> steps;
};

std::vector<CplxI> random_chips(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<CplxI> out(n);
  for (auto& c : out) {
    c = {static_cast<int>(rng.below(2000)) - 1000,
         static_cast<int>(rng.below(2000)) - 1000};
  }
  return out;
}

/// Descrambler fleet member: all chips fed up front, one quantum.
Instance make_descrambler(xpp::SchedulerKind kind, std::size_t lane,
                          std::size_t n_chips) {
  Instance inst;
  inst.mgr = std::make_unique<xpp::ConfigurationManager>(xpp::ArrayGeometry{},
                                                         kind);
  const auto cfg = rake::maps::descrambler_config();
  inst.crc = cfg.checksum ? *cfg.checksum : xpp::config_crc32(cfg);
  inst.id = inst.mgr->load(cfg);
  // Pre-generate the streams so the timed drive measures simulation,
  // not random-number generation (identical in every mode regardless).
  auto data = rake::maps::pack_stream(random_chips(n_chips, 13 + lane));
  dedhw::UmtsScrambler scr(16);
  std::vector<xpp::Word> code(n_chips);
  for (auto& c : code) c = scr.next2() & 3;
  inst.steps.push_back(
      {[data = std::move(data), code = std::move(code)](Instance& it) {
         it.mgr->input(it.id, "data").feed(data);
         it.mgr->input(it.id, "code").feed(code);
       },
       static_cast<long long>(n_chips) + 256});
  return inst;
}

/// Despreader fleet member (SF=16): guard deopt at each symbol dump.
Instance make_despreader(xpp::SchedulerKind kind, std::size_t lane,
                         std::size_t n_chips) {
  Instance inst;
  inst.mgr = std::make_unique<xpp::ConfigurationManager>(xpp::ArrayGeometry{},
                                                         kind);
  const auto cfg = rake::maps::despreader_config(16, 1);
  inst.crc = cfg.checksum ? *cfg.checksum : xpp::config_crc32(cfg);
  inst.id = inst.mgr->load(cfg);
  auto data = rake::maps::pack_stream(random_chips(n_chips, 29 + lane));
  inst.steps.push_back(
      {[data = std::move(data)](Instance& it) {
         it.mgr->input(it.id, "data").feed(data);
       },
       static_cast<long long>(n_chips) + 256});
  return inst;
}

/// FFT64 stage-0 fleet member: per symbol, the same feed/go/go2 script
/// run_fft64_batch uses, but with fixed quanta (identical in every
/// mode) instead of run_until_quiescent.
Instance make_fft64(xpp::SchedulerKind kind, std::size_t lane,
                    std::size_t n_symbols) {
  constexpr long long kQuantum = 600;  // covers 64 feeds + pipeline depth
  Instance inst;
  inst.mgr = std::make_unique<xpp::ConfigurationManager>(xpp::ArrayGeometry{},
                                                         kind);
  const auto cfg = ofdm::maps::fft64_stage_config(0);
  inst.crc = cfg.checksum ? *cfg.checksum : xpp::config_crc32(cfg);
  inst.id = inst.mgr->load(cfg);
  for (std::size_t s = 0; s < n_symbols; ++s) {
    Rng rng(77 + lane * 1000 + s);
    std::vector<xpp::Word> sym(phy::kFftSize);
    for (auto& w : sym) {
      w = pack_cplx({static_cast<int>(rng.below(2000)) - 1000,
                     static_cast<int>(rng.below(2000)) - 1000});
    }
    const std::vector<xpp::Word> ones(phy::kFftSize, 1);
    inst.steps.push_back({[sym = std::move(sym)](Instance& it) {
                            it.mgr->input(it.id, "data").feed(sym);
                          },
                          kQuantum});
    inst.steps.push_back(
        {[ones](Instance& it) { it.mgr->input(it.id, "go").feed(ones); },
         kQuantum});
    inst.steps.push_back(
        {[ones](Instance& it) { it.mgr->input(it.id, "go2").feed(ones); },
         kQuantum});
  }
  return inst;
}

using Maker = Instance (*)(xpp::SchedulerKind, std::size_t, std::size_t);

/// Scalar drive: each instance runs its whole script alone.
double drive_scalar(std::vector<Instance>& fleet) {
  const auto t0 = Clock::now();
  for (auto& inst : fleet) {
    for (auto& step : inst.steps) {
      if (step.feed) step.feed(inst);
      inst.mgr->sim().run(step.cycles);
    }
  }
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Batched drive: the same script, but each quantum advances the whole
/// fleet through the lockstep engine.  Every instance has the same
/// step list by construction.
double drive_batched(std::vector<Instance>& fleet, xpp::BatchProgramCache* cache,
                     int width, xpp::BatchedReplayEngine::Stats* stats_out) {
  const auto t0 = Clock::now();
  xpp::BatchedReplayEngine eng(cache, width);
  for (auto& inst : fleet) eng.add(inst.mgr->sim(), inst.crc);
  const std::size_t n_steps = fleet[0].steps.size();
  for (std::size_t s = 0; s < n_steps; ++s) {
    for (auto& inst : fleet) {
      if (inst.steps[s].feed) inst.steps[s].feed(inst);
    }
    eng.run_cycles(fleet[0].steps[s].cycles);
  }
  if (stats_out != nullptr) *stats_out = eng.stats();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<std::vector<xpp::Word>> take_outputs(std::vector<Instance>& fleet) {
  std::vector<std::vector<xpp::Word>> out;
  out.reserve(fleet.size());
  for (auto& inst : fleet) {
    out.push_back(inst.mgr->output(inst.id, "out").take());
  }
  return out;
}

std::vector<Instance> build_fleet(Maker make, xpp::SchedulerKind kind,
                                  std::size_t n, std::size_t work) {
  std::vector<Instance> fleet;
  fleet.reserve(n);
  for (std::size_t i = 0; i < n; ++i) fleet.push_back(make(kind, i, work));
  return fleet;
}

struct Row {
  const char* scenario;
  std::size_t instances = 0;
  int width = 0;
  long long cycles_per_instance = 0;
  double scalar_compiled_ips = 0.0;  ///< instances per second
  double batched_ips = 0.0;
  xpp::BatchedReplayEngine::Stats batch;

  [[nodiscard]] double speedup() const {
    return scalar_compiled_ips > 0 ? batched_ips / scalar_compiled_ips : 0.0;
  }
};

/// Lane-by-lane three-way identity: every mode produced the same words.
bool identical(const char* scenario,
               const std::vector<std::vector<xpp::Word>>& batched,
               const std::vector<std::vector<xpp::Word>>& scalar_comp,
               const std::vector<std::vector<xpp::Word>>& event_driven) {
  for (std::size_t i = 0; i < batched.size(); ++i) {
    if (batched[i].empty() || batched[i] != scalar_comp[i] ||
        batched[i] != event_driven[i]) {
      std::fprintf(stderr,
                   "FAIL %s lane %zu: batched %zu words, scalar-compiled %zu, "
                   "event-driven %zu (or content mismatch)\n",
                   scenario, i, batched[i].size(), scalar_comp[i].size(),
                   event_driven[i].size());
      return false;
    }
  }
  return true;
}

/// Per-fleet scalar reference, measured ONCE and reused by every width
/// row: the per-instance scalar drive is width-independent, and a
/// shared baseline keeps the speedup column's denominator from jitter
/// on a loaded host.
struct ScalarBaseline {
  double best_seconds = 0.0;
  long long cycles_per_instance = 0;
  std::vector<std::vector<xpp::Word>> sc_out;  ///< scalar kCompiled words
  std::vector<std::vector<xpp::Word>> ev_out;  ///< kEventDriven words
};

ScalarBaseline measure_scalar(Maker make, std::size_t instances,
                              std::size_t work, int reps) {
  ScalarBaseline base;
  auto ev = build_fleet(make, xpp::SchedulerKind::kEventDriven, instances, work);
  (void)drive_scalar(ev);
  base.ev_out = take_outputs(ev);
  for (int r = 0; r < reps; ++r) {
    auto sc = build_fleet(make, xpp::SchedulerKind::kCompiled, instances, work);
    const double ts = drive_scalar(sc);
    if (r == 0) {
      base.sc_out = take_outputs(sc);
      base.cycles_per_instance = sc[0].mgr->sim().cycle();
    }
    if (r == 0 || ts < base.best_seconds) base.best_seconds = ts;
  }
  return base;
}

Row run_fleet(const char* name, Maker make, const ScalarBaseline& base,
              std::size_t instances, int width, std::size_t work, int reps) {
  Row row;
  row.scenario = name;
  row.instances = instances;
  row.width = width;
  row.cycles_per_instance = base.cycles_per_instance;

  double best_batched = 0.0;
  std::vector<std::vector<xpp::Word>> bt_out;
  for (int r = 0; r < reps; ++r) {
    xpp::BatchProgramCache cache;
    auto bt = build_fleet(make, xpp::SchedulerKind::kCompiled, instances, work);
    xpp::BatchedReplayEngine::Stats stats;
    const double tb = drive_batched(bt, &cache, width, &stats);
    if (r == 0) {
      bt_out = take_outputs(bt);
      row.batch = stats;
    }
    if (r == 0 || tb < best_batched) best_batched = tb;
  }

  if (!identical(name, bt_out, base.sc_out, base.ev_out)) std::exit(1);

  row.scalar_compiled_ips =
      base.best_seconds > 0
          ? static_cast<double>(instances) / base.best_seconds
          : 0.0;
  row.batched_ips =
      best_batched > 0 ? static_cast<double>(instances) / best_batched : 0.0;
  return row;
}

std::string render_json(const std::vector<Row>& rows, bool smoke) {
  std::string j;
  bench::appendf(j, "{\n  \"bench\": \"bench_batch\",\n");
  bench::appendf(j, "  %s,\n", bench::host_context_json().c_str());
  bench::appendf(j, "  \"unit\": \"instances_per_second\",\n");
  bench::appendf(j, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  bench::appendf(j, "  \"bit_identical_lanes\": true,\n");
  bench::appendf(j, "  \"fleets\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    bench::appendf(
        j,
        "    {\"scenario\": \"%s\", \"instances\": %zu, \"width\": %d,\n"
        "     \"cycles_per_instance\": %lld,\n"
        "     \"scalar_compiled_ips\": %s, \"batched_ips\": %s, "
        "\"speedup\": %s,\n"
        "     \"batched_cycles\": %lld, \"scalar_cycles\": %lld, "
        "\"gathers\": %lld, \"guard_exits\": %lld, \"join_rejects\": %lld}%s\n",
        r.scenario, r.instances, r.width, r.cycles_per_instance,
        bench::json_num(r.scalar_compiled_ips, 2).c_str(),
        bench::json_num(r.batched_ips, 2).c_str(),
        bench::json_num(r.speedup(), 3).c_str(), r.batch.batched_cycles,
        r.batch.scalar_cycles, r.batch.gathers, r.batch.guard_exits,
        r.batch.join_rejects, i + 1 < rows.size() ? "," : "");
  }
  bench::appendf(j, "  ]\n}\n");
  return j;
}

}  // namespace
}  // namespace rsp

int main(int argc, char** argv) {
  const rsp::bench::Args args = rsp::bench::parse_args(argc, argv);
  rsp::bench::title(
      "Batched cross-instance SIMD replay: fleet throughput vs per-instance "
      "scalar compiled replay");
  rsp::bench::note(std::string("SIMD ISA: ") + rsp::xpp::simd::isa_name() +
                   ", native lane width " +
                   std::to_string(rsp::xpp::simd::native_lane_width()));

  const int reps = args.smoke ? 1 : 3;
  const std::size_t chips = args.smoke ? 2048 : 20000;
  const std::size_t symbols = args.smoke ? 2 : 6;
  const std::size_t instances = args.smoke ? 4 : 16;
  std::vector<int> widths;
  if (args.smoke) {
    widths = {1, 4};
  } else {
    widths = {1, 8, 16};
  }

  struct Gen {
    const char* name;
    rsp::Maker make;
    std::size_t work;
  };
  const Gen gens[] = {
      {"descrambler_stream", rsp::make_descrambler, chips},
      {"despreader_sf16", rsp::make_despreader, chips},
      {"fft64_stage0", rsp::make_fft64, symbols},
  };

  std::vector<rsp::Row> rows;
  for (const Gen& g : gens) {
    const rsp::ScalarBaseline base =
        rsp::measure_scalar(g.make, instances, g.work, reps);
    for (const int w : widths) {
      rows.push_back(
          rsp::run_fleet(g.name, g.make, base, instances, w, g.work, reps));
    }
  }

  rsp::bench::Table t({"fleet", "inst", "width", "cycles/inst", "scalar i/s",
                       "batched i/s", "speedup", "batched cyc", "scalar cyc",
                       "ejects"});
  for (const rsp::Row& r : rows) {
    t.row({r.scenario, rsp::bench::fmt_int(static_cast<long long>(r.instances)),
           rsp::bench::fmt_int(r.width), rsp::bench::fmt_int(r.cycles_per_instance),
           rsp::bench::fmt(r.scalar_compiled_ips, 1),
           rsp::bench::fmt(r.batched_ips, 1), rsp::bench::fmt(r.speedup(), 2),
           rsp::bench::fmt_int(r.batch.batched_cycles),
           rsp::bench::fmt_int(r.batch.scalar_cycles),
           rsp::bench::fmt_int(r.batch.guard_exits)});
  }
  t.print();
  rsp::bench::note(
      "all lanes bit-identical across batched kCompiled / scalar kCompiled / "
      "kEventDriven");

  const bool wrote = rsp::bench::write_json_checked(
      "BENCH_batch.json", rsp::render_json(rows, args.smoke));
  if (wrote) rsp::bench::note("wrote BENCH_batch.json");
  return wrote ? 0 : 1;
}

// Executable 2G baseline (GSM / GPRS / EDGE classes): measures the
// real operation counts of the burst equalizer substrate and projects
// them to the paper's Figure 1 MIPS rungs, plus BER sanity under ISI.
#include <cmath>

#include "bench/report.hpp"
#include "src/common/rng.hpp"
#include "src/gsm/equalizer.hpp"
#include "src/phy/channel.hpp"

namespace {

using namespace rsp;

struct BurstStats {
  double mips_per_slot = 0.0;
  double ber = 0.0;
};

BurstStats run_gsm(int taps, double esn0_db, int bursts) {
  Rng rng(5);
  dsp::DspModel dsp;
  long long errors = 0;
  long long bits = 0;
  for (int t = 0; t < bursts; ++t) {
    std::vector<std::uint8_t> payload(2 * gsm::kDataBits);
    for (auto& b : payload) b = rng.bit() ? 1 : 0;
    std::vector<CplxF> h = {{0.85, 0.05}};
    for (int k = 1; k < taps; ++k) {
      h.push_back({0.5 * rng.uniform() - 0.1, 0.3 * rng.uniform() - 0.15});
    }
    auto rx = gsm::isi_channel(gsm::gmsk_map(gsm::Burst::make(payload)), h);
    rx.resize(gsm::kBurstSymbols);
    rx = phy::awgn(rx, esn0_db, rng);
    const auto res = gsm::gsm_receive(rx, taps, &dsp);
    for (std::size_t i = 0; i < payload.size(); ++i) {
      errors += (res.payload[i] != payload[i]) ? 1 : 0;
      ++bits;
    }
  }
  BurstStats s;
  s.mips_per_slot = static_cast<double>(dsp.total_instructions()) /
                    bursts * gsm::kBurstsPerSecond / 1.0e6;
  s.ber = static_cast<double>(errors) / static_cast<double>(bits);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  // Model-evaluation harness: already smoke-sized, so --smoke is
  // accepted (ctest -L perf) without changing the workload.
  (void)rsp::bench::parse_args(argc, argv);
  using namespace rsp;
  bench::title("2G baseline — executable GSM/EDGE burst equalizer");

  bench::note("Measured equalizer load (per timeslot) vs Figure 1's rungs:");
  bench::Table t({"class", "config", "MIPS/slot (measured)",
                  "x slots", "system MIPS", "paper rung"});
  const auto gsm1 = run_gsm(2, 12.0, 16);
  const auto gsm2 = run_gsm(4, 12.0, 16);
  t.row({"GSM (speech, 1 slot)", "2-tap MLSE",
         bench::fmt(gsm1.mips_per_slot, 1), "1",
         bench::fmt(gsm1.mips_per_slot + 6.0, 1) + " (+codec ~6)", "10"});
  t.row({"GPRS/HSCSD (8 slots)", "4-tap MLSE",
         bench::fmt(gsm2.mips_per_slot, 1), "8",
         bench::fmt(8.0 * gsm2.mips_per_slot + 25.0, 1) + " (+RLC ~25)",
         "100"});
  // EDGE: 8-PSK trellis is 8x wider per tap; measure one slot.
  {
    Rng rng(9);
    dsp::DspModel dsp;
    std::vector<std::uint8_t> bits(3 * 116);
    for (auto& b : bits) b = rng.bit() ? 1 : 0;
    auto sym = gsm::psk8_map(bits);
    sym.insert(sym.begin(), gsm::psk8_map({0, 0, 0})[0]);
    const std::vector<CplxF> h = {{0.95, 0.05}, {0.3, -0.15}};
    auto rx = gsm::isi_channel(sym, h);
    rx.resize(sym.size());
    rx = phy::awgn(rx, 22.0, rng);
    (void)gsm::edge_receive(rx, h, sym.size(), &dsp);
    const double mips = static_cast<double>(dsp.total_instructions()) *
                        gsm::kBurstsPerSecond / 1.0e6;
    t.row({"EDGE (8 slots)", "8-PSK 2-tap MLSE", bench::fmt(mips, 1), "8",
           bench::fmt(8.0 * mips * 8.0, 1) + " (+IR/decode x8)", "1000"});
  }
  t.print();

  bench::note("\nEqualizer BER sanity (random 3-tap ISI, 16 bursts):");
  bench::Table b({"Es/N0 (dB)", "payload BER"});
  for (const double esn0 : {6.0, 9.0, 12.0, 15.0}) {
    b.row({bench::fmt(esn0, 1), bench::fmt(run_gsm(3, esn0, 16).ber, 4)});
  }
  b.print();

  bench::note(
      "\nShape check: the measured equalizer loads land on Figure 1's\n"
      "10 / 100 / 1000 MIPS rungs once slot counts and the codec/RLC\n"
      "overheads are added — the 2G baseline the paper contrasts the\n"
      "reconfigurable 3G architecture against.");
  return 0;
}

// Figure 6: the rake despreader on the reconfigurable array — OVSF
// chips from a preloaded circular FIFO, complex multiplication,
// complex accumulation with counter/comparator-controlled dump.
//
// Sweeps the downlink spreading-factor range 4..512 and reports
// throughput, resources and bit-exactness per operating point.
#include "bench/report.hpp"
#include "src/common/rng.hpp"
#include "src/rake/maps.hpp"

int main(int argc, char** argv) {
  // Model-evaluation harness: already smoke-sized, so --smoke is
  // accepted (ctest -L perf) without changing the workload.
  (void)rsp::bench::parse_args(argc, argv);
  using namespace rsp;
  bench::title("Figure 6 — rake despreader on the reconfigurable array");

  bench::Table t({"SF", "chips", "symbols", "cycles", "cycles/chip",
                  "ALU-PAEs", "RAM-PAEs", "bit-exact"});
  for (const int sf : {4, 8, 16, 32, 64, 128, 256, 512}) {
    Rng rng(static_cast<std::uint64_t>(sf));
    const std::size_t n_chips = static_cast<std::size_t>(sf) * 24;
    std::vector<CplxI> chips(n_chips);
    for (auto& c : chips) {
      c = {static_cast<int>(rng.below(2048)) - 1024,
           static_cast<int>(rng.below(2048)) - 1024};
    }
    const int k = sf / 2 + 1;
    xpp::ConfigurationManager mgr;
    xpp::RunResult stats;
    const auto mapped = rake::maps::run_despreader(mgr, chips, sf, k, &stats);
    const auto golden = rake::despread(chips, sf, k);
    t.row({bench::fmt_int(sf),
           bench::fmt_int(static_cast<long long>(n_chips)),
           bench::fmt_int(static_cast<long long>(mapped.size())),
           bench::fmt_int(stats.cycles),
           bench::fmt(static_cast<double>(stats.cycles) /
                          static_cast<double>(n_chips), 3),
           bench::fmt_int(stats.info.alu_cells),
           bench::fmt_int(stats.info.ram_cells),
           mapped == golden ? "yes" : "NO"});
  }
  t.print();

  bench::note(
      "\nShape check: the same three-ALU datapath serves every spreading\n"
      "factor from 4 to 512 at one chip per cycle — only the preloaded\n"
      "OVSF FIFO contents and the counter modulus change, which is what\n"
      "makes the despreader software-defined.");
  return 0;
}

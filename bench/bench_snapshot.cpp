// Snapshot cost benchmark: what does crash-resilience cost at the
// array layer?  Measures save_snapshot / restore_snapshot wall time and
// snapshot size for a streaming descrambler cut mid-run, and
// cross-checks the headline correctness claim word-for-word: the
// restored run's remaining output stream must be bit-identical to the
// uninterrupted run's.  Emits BENCH_snapshot.json.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/report.hpp"
#include "src/common/rng.hpp"
#include "src/dedhw/umts_scrambler.hpp"
#include "src/rake/maps.hpp"
#include "src/xpp/manager.hpp"
#include "src/xpp/snapshot.hpp"

namespace rsp {
namespace {

using Clock = std::chrono::steady_clock;

struct Measurement {
  std::size_t snapshot_bytes = 0;
  double save_seconds = 0.0;
  double restore_seconds = 0.0;
  bool identical = false;
  long long cut_cycle = 0;
  long long total_cycles = 0;
};

std::vector<CplxI> random_chips(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<CplxI> out(n);
  for (auto& c : out) {
    c = {static_cast<int>(rng.below(2000)) - 1000,
         static_cast<int>(rng.below(2000)) - 1000};
  }
  return out;
}

Measurement run(std::size_t n_chips, int reps) {
  const auto chips = random_chips(n_chips, 42);
  dedhw::UmtsScrambler scr(16);
  std::vector<xpp::Word> code_words(chips.size());
  for (auto& c : code_words) c = scr.next2() & 3;
  const auto data = rake::maps::pack_stream(chips);
  const auto cfg = rake::maps::descrambler_config();

  auto fresh = [&] {
    auto mgr = std::make_unique<xpp::ConfigurationManager>(
        xpp::ArrayGeometry{}, xpp::SchedulerKind::kEventDriven);
    const xpp::ConfigId id = mgr->load(cfg);
    mgr->input(id, "data").feed(data);
    mgr->input(id, "code").feed(code_words);
    return mgr;
  };
  auto drain = [&](xpp::ConfigurationManager& mgr) {
    auto& out = mgr.output(0, "out");  // first (only) load gets id 0
    long long guard = static_cast<long long>(n_chips) * 16;
    while (out.data().size() < chips.size() && guard-- > 0) mgr.sim().step();
    return out.take();
  };

  Measurement m;

  // Uninterrupted reference.
  auto ref_mgr = fresh();
  const auto ref_out = drain(*ref_mgr);
  m.total_cycles = ref_mgr->sim().cycle();

  // Cut halfway through the stream, best-of-reps on the timed phases.
  auto mgr = fresh();
  while (mgr->sim().cycle() < m.total_cycles / 2) mgr->sim().step();
  m.cut_cycle = mgr->sim().cycle();

  std::string bytes;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    bytes = xpp::save_snapshot(*mgr);
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    if (m.save_seconds == 0.0 || s < m.save_seconds) m.save_seconds = s;
  }
  m.snapshot_bytes = bytes.size();

  std::unique_ptr<xpp::ConfigurationManager> restored;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    restored = xpp::restore_snapshot_new(bytes);
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    if (m.restore_seconds == 0.0 || s < m.restore_seconds) m.restore_seconds = s;
  }

  const auto cut_out = drain(*restored);
  m.identical = cut_out == ref_out &&
                restored->sim().cycle() == ref_mgr->sim().cycle() &&
                restored->sim().total_fires() == ref_mgr->sim().total_fires();
  return m;
}

bool write_json(const Measurement& m) {
  std::string j;
  bench::appendf(j, "{\n  \"bench\": \"bench_snapshot\",\n");
  bench::appendf(j, "  %s,\n", bench::host_context_json().c_str());
  bench::appendf(j, "  \"workload\": \"descrambler_stream_halfway_cut\",\n");
  bench::appendf(j, "  \"snapshot_bytes\": %zu,\n", m.snapshot_bytes);
  bench::appendf(j, "  \"cut_cycle\": %lld,\n", m.cut_cycle);
  bench::appendf(j, "  \"total_cycles\": %lld,\n", m.total_cycles);
  bench::appendf(j, "  \"save_seconds\": %s,\n",
                 bench::json_num(m.save_seconds, 9).c_str());
  bench::appendf(j, "  \"restore_seconds\": %s,\n",
                 bench::json_num(m.restore_seconds, 9).c_str());
  bench::appendf(j, "  \"restored_bit_identical\": %s\n",
                 m.identical ? "true" : "false");
  bench::appendf(j, "}\n");
  return bench::write_json_checked("BENCH_snapshot.json", j);
}

}  // namespace
}  // namespace rsp

int main(int argc, char** argv) {
  const rsp::bench::Args args = rsp::bench::parse_args(argc, argv);
  rsp::bench::title("Snapshot cost: save/restore a mid-stream descrambler");

  const std::size_t kChips = args.smoke ? 512 : 16384;
  const rsp::Measurement m = rsp::run(kChips, args.smoke ? 2 : 7);

  rsp::bench::Table t({"metric", "value"});
  t.row({"snapshot size", rsp::bench::fmt_int(
                              static_cast<long long>(m.snapshot_bytes)) +
                              " B"});
  t.row({"save time", rsp::bench::fmt(m.save_seconds * 1e6, 1) + " us"});
  t.row({"restore time", rsp::bench::fmt(m.restore_seconds * 1e6, 1) + " us"});
  t.row({"cut cycle", rsp::bench::fmt_int(m.cut_cycle) + " / " +
                          rsp::bench::fmt_int(m.total_cycles)});
  t.print();
  rsp::bench::note(m.identical
                       ? "cross-check: restored run bit-identical to reference"
                       : "cross-check: FAILED — restored run diverged");
  const bool wrote = rsp::write_json(m);
  if (wrote) rsp::bench::note("wrote BENCH_snapshot.json");
  return m.identical && wrote ? 0 : 1;
}

// Shared table-printing helpers for the figure/table reproduction
// harnesses.  Every bench binary prints a self-contained report:
// paper values (where the paper gives them) next to measured/modeled
// values from this implementation.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

namespace rsp::bench {

inline void title(const std::string& what) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", what.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) { std::printf("%s\n", text.c_str()); }

/// Simple fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], r[c].size());
      }
    }
    const auto line = [&] {
      std::printf("+");
      for (const auto w : width) {
        for (std::size_t i = 0; i < w + 2; ++i) std::printf("-");
        std::printf("+");
      }
      std::printf("\n");
    };
    line();
    std::printf("|");
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      std::printf(" %-*s |", static_cast<int>(width[c]), headers_[c].c_str());
    }
    std::printf("\n");
    line();
    for (const auto& r : rows_) {
      std::printf("|");
      for (std::size_t c = 0; c < r.size(); ++c) {
        std::printf(" %-*s |", static_cast<int>(width[c]), r[c].c_str());
      }
      std::printf("\n");
    }
    line();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

inline std::string fmt_int(long long v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

}  // namespace rsp::bench

// Shared table-printing helpers for the figure/table reproduction
// harnesses.  Every bench binary prints a self-contained report:
// paper values (where the paper gives them) next to measured/modeled
// values from this implementation.
#pragma once

#include <algorithm>
#include <clocale>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/xpp/simd.hpp"
#include "tests/support/json_lite.hpp"

namespace rsp::bench {

inline void title(const std::string& what) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", what.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) { std::printf("%s\n", text.c_str()); }

/// Simple fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], r[c].size());
      }
    }
    const auto line = [&] {
      std::printf("+");
      for (const auto w : width) {
        for (std::size_t i = 0; i < w + 2; ++i) std::printf("-");
        std::printf("+");
      }
      std::printf("\n");
    };
    line();
    std::printf("|");
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      std::printf(" %-*s |", static_cast<int>(width[c]), headers_[c].c_str());
    }
    std::printf("\n");
    line();
    for (const auto& r : rows_) {
      std::printf("|");
      // Cells beyond the header count have no measured column width
      // (the measuring loop above clamps to width.size()); indexing
      // width[c] for them would read out of bounds.  Print them flagged
      // with a '!' so a malformed row is visible instead of UB.
      const std::size_t n = std::min(r.size(), width.size());
      for (std::size_t c = 0; c < n; ++c) {
        std::printf(" %-*s |", static_cast<int>(width[c]), r[c].c_str());
      }
      for (std::size_t c = n; c < r.size(); ++c) {
        std::printf(" !%s |", r[c].c_str());
      }
      std::printf("\n");
    }
    line();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

inline std::string fmt_int(long long v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

/// Locale-independent JSON number formatting.  printf's "%f" honours
/// LC_NUMERIC and emits "," decimal separators under e.g. de_DE — which
/// is invalid JSON — so every BENCH_*.json writer routes its doubles
/// through this helper: format, then rewrite the active locale's
/// decimal point back to ".".  Non-finite values (JSON has no
/// representation for them) become "0".
inline std::string json_num(double v, int prec = 2) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  std::string out = buf;
  const lconv* lc = std::localeconv();
  if (lc != nullptr && lc->decimal_point != nullptr) {
    const std::string dp = lc->decimal_point;
    if (!dp.empty() && dp != ".") {
      const std::size_t pos = out.find(dp);
      if (pos != std::string::npos) {
        out = out.substr(0, pos) + "." + out.substr(pos + dp.size());
      }
    }
  }
  return out;
}

/// Locale-independent integer (grouping flags are never used, but keep
/// all JSON numerals behind one choke point).
inline std::string json_num(long long v) { return fmt_int(v); }

/// Command-line surface shared by every bench binary.
///
/// `--smoke` asks for a minimal-size run: same code paths, same
/// cross-checks, tiny workloads — this is what `ctest -L perf` invokes
/// so the harnesses stay exercised (and their BENCH_*.json stays valid)
/// on every test run without perf-grade runtimes.  `--threads N`
/// overrides the worker sweep in bench_farm; other binaries accept and
/// ignore it so one flag vocabulary covers the whole bench/ directory.
struct Args {
  bool smoke = false;
  int threads = 0;  ///< 0 = no override
};

inline Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string s = argv[i];
    if (s == "--smoke") {
      a.smoke = true;
    } else if (s == "--threads" && i + 1 < argc) {
      a.threads = std::atoi(argv[++i]);
    } else if (s.rfind("--threads=", 0) == 0) {
      a.threads = std::atoi(s.c_str() + std::strlen("--threads="));
    } else {
      std::fprintf(stderr,
                   "%s: unknown argument '%s' (known: --smoke, --threads N)\n",
                   argv[0], s.c_str());
      std::exit(2);
    }
  }
  return a;
}

/// Host capability context embedded in every BENCH_*.json: perf
/// numbers are not comparable across machines or toolchains without
/// the environment they were measured in.  Returns one JSON member
/// (no trailing comma); splice it into the top-level object, e.g.
/// `appendf(j, "  %s,\n", host_context_json().c_str())`.
inline std::string host_context_json() {
#if defined(__clang__)
  const char* compiler = "clang " __VERSION__;
#elif defined(__GNUC__)
  const char* compiler = "gcc " __VERSION__;
#else
  const char* compiler = "unknown";
#endif
#if defined(__x86_64__) || defined(_M_X64)
  const char* arch = "x86_64";
#elif defined(__aarch64__) || defined(_M_ARM64)
  const char* arch = "aarch64";
#elif defined(__i386__)
  const char* arch = "x86";
#else
  const char* arch = "unknown";
#endif
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"host\": {\"compiler\": \"%s\", \"arch\": \"%s\", "
                "\"simd_isa\": \"%s\", \"simd_lane_width\": %d, "
                "\"hardware_concurrency\": %u}",
                compiler, arch, rsp::xpp::simd::isa_name(),
                rsp::xpp::simd::native_lane_width(),
                std::thread::hardware_concurrency());
  return buf;
}

/// printf-append into a string accumulator, so JSON payloads can be
/// built in memory and validated before they ever reach disk.
inline void appendf(std::string& out, const char* f, ...) {
  va_list ap;
  va_start(ap, f);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, f, ap);
  va_end(ap);
  if (n > 0) {
    std::vector<char> buf(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), f, ap2);
    out.append(buf.data(), static_cast<std::size_t>(n));
  }
  va_end(ap2);
}

/// Validate `payload` with the same RFC 8259 checker the test suite
/// uses, then write it ATOMICALLY (temp file + rename).  A malformed
/// payload (e.g. a locale that sneaks a "," decimal past json_num) is
/// refused with a nonzero outcome so the perf smoke test fails loudly
/// instead of shipping a broken BENCH_*.json; a bench killed mid-write
/// leaves either the previous complete file or none, never a torn one.
inline bool write_json_checked(const std::string& path,
                               const std::string& payload) {
  if (!rsp::testing::json_valid(payload)) {
    std::fprintf(stderr, "%s: payload is not valid JSON, refusing to write\n",
                 path.c_str());
    return false;
  }
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", tmp.c_str());
    return false;
  }
  const std::size_t written = std::fwrite(payload.data(), 1, payload.size(), f);
  bool ok = written == payload.size() && std::fflush(f) == 0;
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    std::fprintf(stderr, "short write to %s\n", tmp.c_str());
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "cannot rename %s over %s\n", tmp.c_str(),
                 path.c_str());
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace rsp::bench

// Shared table-printing helpers for the figure/table reproduction
// harnesses.  Every bench binary prints a self-contained report:
// paper values (where the paper gives them) next to measured/modeled
// values from this implementation.
#pragma once

#include <algorithm>
#include <clocale>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace rsp::bench {

inline void title(const std::string& what) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", what.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) { std::printf("%s\n", text.c_str()); }

/// Simple fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], r[c].size());
      }
    }
    const auto line = [&] {
      std::printf("+");
      for (const auto w : width) {
        for (std::size_t i = 0; i < w + 2; ++i) std::printf("-");
        std::printf("+");
      }
      std::printf("\n");
    };
    line();
    std::printf("|");
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      std::printf(" %-*s |", static_cast<int>(width[c]), headers_[c].c_str());
    }
    std::printf("\n");
    line();
    for (const auto& r : rows_) {
      std::printf("|");
      // Cells beyond the header count have no measured column width
      // (the measuring loop above clamps to width.size()); indexing
      // width[c] for them would read out of bounds.  Print them flagged
      // with a '!' so a malformed row is visible instead of UB.
      const std::size_t n = std::min(r.size(), width.size());
      for (std::size_t c = 0; c < n; ++c) {
        std::printf(" %-*s |", static_cast<int>(width[c]), r[c].c_str());
      }
      for (std::size_t c = n; c < r.size(); ++c) {
        std::printf(" !%s |", r[c].c_str());
      }
      std::printf("\n");
    }
    line();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

inline std::string fmt_int(long long v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

/// Locale-independent JSON number formatting.  printf's "%f" honours
/// LC_NUMERIC and emits "," decimal separators under e.g. de_DE — which
/// is invalid JSON — so every BENCH_*.json writer routes its doubles
/// through this helper: format, then rewrite the active locale's
/// decimal point back to ".".  Non-finite values (JSON has no
/// representation for them) become "0".
inline std::string json_num(double v, int prec = 2) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  std::string out = buf;
  const lconv* lc = std::localeconv();
  if (lc != nullptr && lc->decimal_point != nullptr) {
    const std::string dp = lc->decimal_point;
    if (!dp.empty() && dp != ".") {
      const std::size_t pos = out.find(dp);
      if (pos != std::string::npos) {
        out = out.substr(0, pos) + "." + out.substr(pos + dp.size());
      }
    }
  }
  return out;
}

/// Locale-independent integer (grouping flags are never used, but keep
/// all JSON numerals behind one choke point).
inline std::string json_num(long long v) { return fmt_int(v); }

}  // namespace rsp::bench

// Link-level evaluation curves (beyond the paper's figures, for
// downstream users): W-CDMA rake BER vs Es/N0 with 1 vs 3 fingers, and
// 802.11a packet success vs Es/N0 per rate mode.  These quantify the
// combining / diversity / coding gains the architecture exists to
// deliver.
#include <cmath>

#include "bench/report.hpp"
#include "src/common/rng.hpp"
#include "src/ofdm/golden.hpp"
#include "src/phy/channel.hpp"
#include "src/phy/ofdm_tx.hpp"
#include "src/phy/umts_tx.hpp"
#include "src/rake/receiver.hpp"

namespace {

using namespace rsp;

double rake_ber(int paths_combined, double esn0_db, std::uint64_t seed) {
  Rng rng(seed);
  phy::BasestationConfig bs;
  bs.scrambling_code = 16;
  bs.cpich_gain = 0.5;
  phy::DpchConfig ch;
  ch.sf = 64;
  ch.code_index = 3;
  ch.gain = 0.7;
  ch.bits.resize(256);
  for (auto& b : ch.bits) b = rng.bit() ? 1 : 0;
  bs.channels.push_back(ch);
  phy::UmtsDownlinkTx tx(bs);
  const auto chips = tx.generate(64 * 192)[0];
  phy::MultipathChannel mp(
      {{2, {0.62, 0.0}, 0.0}, {9, {0.0, 0.55}, 0.0}, {17, {0.39, -0.3}, 0.0}},
      3.84e6);
  const auto rx = mp.run(chips, esn0_db, rng);
  rake::RakeConfig cfg;
  cfg.scrambling_codes = {16};
  cfg.sf = 64;
  cfg.code_index = 3;
  cfg.paths_per_bs = paths_combined;
  cfg.pilot_amplitude = 0.5;
  rake::RakeReceiver receiver(cfg);
  const auto out = receiver.receive(rx);
  if (out.bits.empty()) return 0.5;
  int errors = 0;
  for (std::size_t i = 0; i < out.bits.size(); ++i) {
    errors += (out.bits[i] != ch.bits[i % ch.bits.size()]) ? 1 : 0;
  }
  return static_cast<double>(errors) / static_cast<double>(out.bits.size());
}

bool wlan_frame_ok(int mbps, double esn0_db, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> psdu(800);
  for (auto& b : psdu) b = rng.bit() ? 1 : 0;
  phy::OfdmTransmitter tx;
  auto capture = tx.build_ppdu(psdu, mbps);
  std::vector<CplxF> lead(150, CplxF{0, 0});
  capture.insert(capture.begin(), lead.begin(), lead.end());
  capture = phy::awgn(capture, esn0_db, rng);
  ofdm::OfdmRxConfig cfg;
  cfg.mbps = mbps;
  ofdm::OfdmReceiver receiver(cfg);
  const auto res = receiver.receive(capture, psdu.size());
  if (!res.preamble_found || res.psdu.size() != psdu.size()) return false;
  for (std::size_t i = 0; i < psdu.size(); ++i) {
    if (res.psdu[i] != psdu[i]) return false;
  }
  return true;
}

}  // namespace

int main() {
  bench::title("Link-level curves — rake combining & OFDM rate modes");

  bench::note("W-CDMA rake raw BER vs Es/N0 (3-path static channel, SF 64):");
  bench::Table r({"Es/N0 (dB)", "1 finger", "3 fingers (MRC)"});
  for (const double esn0 : {-8.0, -6.0, -4.0, -2.0, 0.0}) {
    double b1 = 0.0;
    double b3 = 0.0;
    const int trials = 4;
    for (int t = 0; t < trials; ++t) {
      b1 += rake_ber(1, esn0, 100 + static_cast<std::uint64_t>(t));
      b3 += rake_ber(3, esn0, 100 + static_cast<std::uint64_t>(t));
    }
    r.row({bench::fmt(esn0, 1), bench::fmt(b1 / trials, 4),
           bench::fmt(b3 / trials, 4)});
  }
  r.print();

  bench::note("\n802.11a frame success rate vs Es/N0 (AWGN, 800-bit PSDU, "
              "4 frames/point):");
  bench::Table w({"Es/N0 (dB)", "6 Mb/s", "12 Mb/s", "24 Mb/s", "54 Mb/s"});
  for (const double esn0 : {4.0, 8.0, 12.0, 16.0, 20.0, 24.0}) {
    std::vector<std::string> row = {bench::fmt(esn0, 1)};
    for (const int mbps : {6, 12, 24, 54}) {
      int ok = 0;
      const int trials = 4;
      for (int t = 0; t < trials; ++t) {
        ok += wlan_frame_ok(mbps, esn0,
                            200 + static_cast<std::uint64_t>(t) * 17 +
                                static_cast<std::uint64_t>(mbps))
                  ? 1
                  : 0;
      }
      row.push_back(bench::fmt(static_cast<double>(ok) / trials, 2));
    }
    w.row(row);
  }
  w.print();

  bench::note(
      "\nShape check: MRC over three fingers buys several dB over a\n"
      "single finger in frequency-selective fading, and the 802.11a\n"
      "modes switch on in rate order as Es/N0 grows (6 Mb/s first,\n"
      "54 Mb/s last) — the waterfall staircase that motivates\n"
      "multi-rate OFDM.");
  return 0;
}

// Link-level evaluation curves (beyond the paper's figures, for
// downstream users): W-CDMA rake BER vs Es/N0 with 1 vs 3 fingers, and
// 802.11a packet success vs Es/N0 per rate mode.  These quantify the
// combining / diversity / coding gains the architecture exists to
// deliver.
//
// Both sweeps run through the scenario farm (src/farm): 200 independent
// trials per point, seeded with Rng::split so the curves are
// bit-identical at any thread count, with Wilson 95% intervals printed
// next to every estimate.
#include <functional>

#include "bench/report.hpp"
#include "src/farm/farm.hpp"
#include "src/farm/kernels.hpp"

namespace {

using namespace rsp;

/// 200 trials/point for perf-grade curves; --smoke (ctest -L perf)
/// shrinks to 8 so the harness stays exercised without BER-grade
/// runtimes.
int g_trials_per_point = 200;

/// The single sweep-point helper both tables use (the old bench had two
/// hand-rolled serial copies of this loop, which had already drifted).
farm::FarmResult run_point(const farm::ScenarioFarm& f,
                           const std::function<farm::TrialResult(
                               std::uint64_t)>& kernel,
                           std::uint64_t base_seed) {
  return f.run(static_cast<std::size_t>(g_trials_per_point), base_seed,
               [&](std::uint64_t seed, std::size_t) { return kernel(seed); });
}

std::string with_ci(double value, farm::Interval ci, int prec) {
  return bench::fmt(value, prec) + " [" + bench::fmt(ci.lo, prec) + ", " +
         bench::fmt(ci.hi, prec) + "]";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = rsp::bench::parse_args(argc, argv);
  if (args.smoke) g_trials_per_point = 8;
  bench::title("Link-level curves — rake combining & OFDM rate modes");
  farm::ScenarioFarm f;

  bench::note("W-CDMA rake raw BER vs Es/N0 (3-path static channel, SF 64,");
  bench::note(std::to_string(g_trials_per_point) +
              " trials/point, Wilson 95% CI):");
  bench::Table r({"Es/N0 (dB)", "1 finger", "3 fingers (MRC)"});
  double total_frames = 0.0;
  double total_seconds = 0.0;
  for (const double esn0 : {-8.0, -6.0, -4.0, -2.0, 0.0}) {
    farm::kernels::RakeTrial one;
    one.fingers = 1;
    one.esn0_db = esn0;
    farm::kernels::RakeTrial three;
    three.fingers = 3;
    three.esn0_db = esn0;
    const auto r1 = run_point(f, one, 100);
    const auto r3 = run_point(f, three, 100);
    total_frames += static_cast<double>(r1.agg.total().frames +
                                        r3.agg.total().frames);
    total_seconds += r1.wall_seconds + r3.wall_seconds;
    r.row({bench::fmt(esn0, 1), with_ci(r1.agg.ber(), r1.agg.ber_ci(), 4),
           with_ci(r3.agg.ber(), r3.agg.ber_ci(), 4)});
  }
  r.print();

  bench::note("\n802.11a frame success rate vs Es/N0 (AWGN, 800-bit PSDU, " +
              std::to_string(g_trials_per_point) +
              " frames/point, Wilson 95% CI):");
  bench::Table w({"Es/N0 (dB)", "6 Mb/s", "12 Mb/s", "24 Mb/s", "54 Mb/s"});
  for (const double esn0 : {4.0, 8.0, 12.0, 16.0, 20.0, 24.0}) {
    std::vector<std::string> row = {bench::fmt(esn0, 1)};
    for (const int mbps : {6, 12, 24, 54}) {
      farm::kernels::WlanTrial trial;
      trial.mbps = mbps;
      trial.esn0_db = esn0;
      const auto res =
          run_point(f, trial, 200 + static_cast<std::uint64_t>(mbps));
      total_frames += static_cast<double>(res.agg.total().frames);
      total_seconds += res.wall_seconds;
      const double success = 1.0 - res.agg.fer();
      const auto ci = res.agg.fer_ci();
      // Success-rate interval is the FER interval mirrored.
      row.push_back(with_ci(success, {1.0 - ci.hi, 1.0 - ci.lo}, 2));
    }
    w.row(row);
  }
  w.print();

  bench::note("\nFarm: " + std::to_string(f.threads()) + " threads, " +
              bench::fmt(total_seconds > 0 ? total_frames / total_seconds : 0,
                         1) +
              " frames/s overall");
  bench::note(
      "\nShape check: MRC over three fingers buys several dB over a\n"
      "single finger in frequency-selective fading, and the 802.11a\n"
      "modes switch on in rate order as Es/N0 grows (6 Mb/s first,\n"
      "54 Mb/s last) — the waterfall staircase that motivates\n"
      "multi-rate OFDM.");
  return 0;
}

// Figure 8: partitioning of the OFDM decoder tasks onto dedicated
// hardware, the reconfigurable processor and the DSP/microprocessor.
#include "bench/report.hpp"
#include "src/common/rng.hpp"
#include "src/ofdm/golden.hpp"
#include "src/phy/channel.hpp"
#include "src/sdr/partitioning.hpp"

int main(int argc, char** argv) {
  // Model-evaluation harness: already smoke-sized, so --smoke is
  // accepted (ctest -L perf) without changing the workload.
  (void)rsp::bench::parse_args(argc, argv);
  using namespace rsp;
  bench::title("Figure 8 — partitioning of the OFDM decoder tasks");

  for (const int mbps : {6, 54}) {
    bench::note("\nRate mode " + bench::fmt_int(mbps) + " Mbit/s:");
    const auto tasks = sdr::ofdm_partitioning(mbps);
    bench::Table t({"task", "resource", "Mops at full load"});
    for (const auto& task : tasks) {
      t.row({task.task, sdr::resource_name(task.resource),
             bench::fmt(task.mops, 1)});
    }
    t.print();
    const double reconf =
        sdr::total_mops(tasks, sdr::Resource::kReconfigurable);
    const double ded = sdr::total_mops(tasks, sdr::Resource::kDedicated);
    const double dspm = sdr::total_mops(tasks, sdr::Resource::kDsp);
    bench::note("totals: reconfigurable " + bench::fmt(reconf, 0) +
                " Mops, dedicated " + bench::fmt(ded, 0) + " Mops, DSP " +
                bench::fmt(dspm, 0) + " Mops");
  }

  // Measured DSP split from an actual frame decode.
  Rng rng(4);
  std::vector<std::uint8_t> psdu(400);
  for (auto& b : psdu) b = rng.bit() ? 1 : 0;
  phy::OfdmTransmitter tx;
  auto cap = tx.build_ppdu(psdu, 24);
  std::vector<CplxF> lead(180, CplxF{0, 0});
  cap.insert(cap.begin(), lead.begin(), lead.end());
  cap = phy::awgn(cap, 24.0, rng);
  dsp::DspModel dsp;
  ofdm::OfdmRxConfig cfg;
  cfg.mbps = 24;
  ofdm::OfdmReceiver receiver(cfg);
  const auto res = receiver.receive(cap, psdu.size(), &dsp);

  bench::note("\nMeasured DSP-side task split for one 24 Mbit/s frame (" +
              bench::fmt_int(res.symbols_decoded) + " DATA symbols):");
  bench::Table m({"DSP task", "instructions", "cycles"});
  for (const auto& [name, stats] : dsp.tasks()) {
    m.row({name, bench::fmt_int(stats.instructions),
           bench::fmt_int(stats.cycles)});
  }
  m.print();

  bench::note(
      "\nShape check: the FFT/demodulation streaming work dominates and\n"
      "belongs to the reconfigurable processor; the Viterbi decoder is\n"
      "the one fixed-function block; the DSP handles layer 2 and\n"
      "configuration control — the paper's Figure 8 split.");
  return 0;
}

// Figure 3: integrated design flow for the reconfigurable hardware.
//
// The paper's flow lowers C through XPP-VC into NML and loads the
// result next to the microcontroller executable.  Here the flow is:
// typed C++ builder (the "annotated C" stage) -> NML text (the
// structural hand-off) -> parse -> load onto the array.  The bench
// verifies round-trip integrity and reports configuration sizes and
// load costs for the paper's datapaths.
#include "bench/report.hpp"
#include "src/ofdm/maps.hpp"
#include "src/rake/golden.hpp"
#include "src/rake/maps.hpp"
#include "src/xpp/manager.hpp"
#include "src/xpp/nml.hpp"

int main(int argc, char** argv) {
  // Model-evaluation harness: already smoke-sized, so --smoke is
  // accepted (ctest -L perf) without changing the workload.
  (void)rsp::bench::parse_args(argc, argv);
  using namespace rsp;
  using xpp::Configuration;
  bench::title("Figure 3 — integrated design flow (builder -> NML -> array)");

  rake::CorrectorWeights w;
  w.sttd = true;
  w.conj_h1 = rake::quantize_weight({0.8, 0.1});
  w.h2 = rake::quantize_weight({-0.3, 0.5});

  const std::vector<Configuration> configs = {
      rake::maps::descrambler_config(),
      rake::maps::despreader_config(64, 3),
      rake::maps::chancorr_config(w),
      ofdm::maps::preamble_config(),
      ofdm::maps::fft64_stage_config(0),
  };

  bench::Table t({"configuration", "objects", "nets", "NML bytes",
                  "round-trip", "load cycles"});
  for (const auto& cfg : configs) {
    // Emit NML, re-parse, verify the structural round trip.
    const std::string nml = xpp::to_nml(cfg);
    const Configuration again = xpp::parse_nml(nml);
    const bool ok = again.objects.size() == cfg.objects.size() &&
                    again.connections.size() == cfg.connections.size();

    // Load the re-parsed configuration onto a fresh array.
    xpp::ConfigurationManager mgr;
    const auto id = mgr.load(again);
    t.row({cfg.name, bench::fmt_int(static_cast<long long>(cfg.objects.size())),
           bench::fmt_int(static_cast<long long>(cfg.connections.size())),
           bench::fmt_int(static_cast<long long>(nml.size())),
           ok ? "OK" : "FAIL",
           bench::fmt_int(mgr.info(id).load_cycles)});
    mgr.release(id);
  }
  t.print();

  bench::note(
      "\nEvery paper datapath survives the software flow unchanged and\n"
      "loads in tens-to-hundreds of cycles — the 'software-defined'\n"
      "property: array behaviour ships as data, not as silicon.");
  return 0;
}

// Figure 7: channel correction unit with STTD decoding on the array —
// weight FIFOs, complex multiplications, the pair swap and the final
// combination.
#include <cmath>

#include "bench/report.hpp"
#include "src/common/rng.hpp"
#include "src/phy/umts_tx.hpp"
#include "src/rake/maps.hpp"

namespace {

using namespace rsp;

std::vector<CplxI> random_symbols(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<CplxI> out(n);
  for (auto& c : out) {
    c = {static_cast<int>(rng.below(1600)) - 800,
         static_cast<int>(rng.below(1600)) - 800};
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // Model-evaluation harness: already smoke-sized, so --smoke is
  // accepted (ctest -L perf) without changing the workload.
  (void)rsp::bench::parse_args(argc, argv);
  bench::title("Figure 7 — channel correction unit (incl. STTD decoding)");

  const auto symbols = random_symbols(2048, 5);

  // Plain MRC weighting.
  {
    rake::CorrectorWeights w;
    w.conj_h1 = rake::quantize_weight({0.7, -0.4});
    xpp::ConfigurationManager mgr;
    xpp::RunResult stats;
    const auto mapped = rake::maps::run_chancorr(mgr, symbols, w, &stats);
    const auto golden = rake::channel_correct(symbols, w);
    bench::Table t({"MRC weighting", "value"});
    t.row({"symbols", bench::fmt_int(static_cast<long long>(symbols.size()))});
    t.row({"bit-exact vs golden", mapped == golden ? "yes" : "NO"});
    t.row({"ALU-PAEs", bench::fmt_int(stats.info.alu_cells)});
    t.row({"RAM-PAEs (weight FIFO)", bench::fmt_int(stats.info.ram_cells)});
    t.row({"cycles/symbol",
           bench::fmt(static_cast<double>(stats.cycles) /
                          static_cast<double>(symbols.size()), 3)});
    t.print();
  }

  // STTD decode + weighting.
  {
    rake::CorrectorWeights w;
    w.sttd = true;
    w.conj_h1 = rake::quantize_weight({0.8, 0.1});
    w.h2 = rake::quantize_weight({-0.35, 0.55});
    xpp::ConfigurationManager mgr;
    xpp::RunResult stats;
    const auto mapped = rake::maps::run_chancorr(mgr, symbols, w, &stats);
    const auto golden = rake::channel_correct(symbols, w);
    bench::Table t({"STTD decode + weighting", "value"});
    t.row({"symbol pairs",
           bench::fmt_int(static_cast<long long>(symbols.size() / 2))});
    t.row({"bit-exact vs golden", mapped == golden ? "yes" : "NO"});
    t.row({"ALU-PAEs", bench::fmt_int(stats.info.alu_cells)});
    t.row({"RAM-PAEs (weight FIFOs)", bench::fmt_int(stats.info.ram_cells)});
    t.row({"cycles/symbol",
           bench::fmt(static_cast<double>(stats.cycles) /
                          static_cast<double>(symbols.size()), 3)});
    t.print();
  }

  // Diversity gain demonstration: STTD decoding recovers the combined
  // |h1|^2 + |h2|^2 energy.
  {
    const CplxF h1{0.8, 0.1};
    const CplxF h2{-0.35, 0.55};
    const auto tx_syms = phy::qpsk_map({0, 0, 1, 0, 0, 1, 1, 1});
    const auto ant = phy::sttd_encode(tx_syms);
    std::vector<CplxI> rx;
    const double scale = 700.0;
    for (std::size_t i = 0; i < tx_syms.size(); ++i) {
      const CplxF r = h1 * ant[0][i] + h2 * ant[1][i];
      rx.push_back({static_cast<int>(std::lround(r.real() * scale)),
                    static_cast<int>(std::lround(r.imag() * scale))});
    }
    rake::CorrectorWeights w;
    w.sttd = true;
    w.conj_h1 = rake::quantize_weight(std::conj(h1));
    w.h2 = rake::quantize_weight(h2);
    xpp::ConfigurationManager mgr;
    const auto decoded = rake::maps::run_chancorr(mgr, rx, w);
    const double g = std::norm(h1) + std::norm(h2);
    bench::Table t({"symbol", "tx (I,Q)", "decoded (I,Q)", "expected gain x tx"});
    for (std::size_t i = 0; i < tx_syms.size(); ++i) {
      t.row({bench::fmt_int(static_cast<long long>(i)),
             "(" + bench::fmt(tx_syms[i].real(), 2) + "," +
                 bench::fmt(tx_syms[i].imag(), 2) + ")",
             "(" + bench::fmt_int(decoded[i].re) + "," +
                 bench::fmt_int(decoded[i].im) + ")",
             "(" + bench::fmt(g * tx_syms[i].real() * scale, 0) + "," +
                 bench::fmt(g * tx_syms[i].imag() * scale, 0) + ")"});
    }
    t.print();
  }

  bench::note(
      "\nShape check: the 8-PAE Figure 7 pipeline sustains one symbol per\n"
      "cycle, decodes STTD pairs bit-exactly against the golden model and\n"
      "delivers the (|h1|^2+|h2|^2) diversity gain the paper relies on.");
  return 0;
}

// Vectorized PHY substrate: scalar reference vs batched block paths,
// per kernel and end-to-end (ROADMAP item 2).  Every workload runs
// twice — once with the substrate forced to the preserved scalar
// reference, once with the block paths — on identical seeds, after a
// bit-identity cross-check of the exactly value-preserving transforms.
// Emits BENCH_phy.json and FAILS (nonzero exit) when the AWGN+multipath
// sample-generation speedup (Rayleigh-fading configuration) drops below
// 2x, in smoke and full runs alike; the end-to-end trial-throughput
// floor is enforced in full runs only (trial times are
// receiver-dominated and noisy at smoke sizes).
//
// The static zero-Doppler channel is reported but NOT gated: its
// reference loop is already noise-bound — cos(0)/sin(0) hit libm's
// tiny-argument fast path, and the Box-Muller stream must keep the
// scalar draw order bit-for-bit (the farm BER contract), so the noise
// generation itself has no vectorization headroom.  The fading
// configuration is where the substrate's per-sample redraw fix and SoA
// kernels pay off.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/report.hpp"
#include "src/common/rng.hpp"
#include "src/dedhw/umts_scrambler.hpp"
#include "src/farm/kernels.hpp"
#include "src/phy/batch_phy.hpp"
#include "src/phy/channel.hpp"
#include "src/phy/ofdm_tx.hpp"
#include "src/phy/umts_tx.hpp"

namespace {

using namespace rsp;
using phy::ScopedSubstrateMode;
using phy::SubstrateMode;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Wall-clock a thunk under a forced substrate mode.
template <typename F>
double timed(SubstrateMode m, F&& f) {
  ScopedSubstrateMode guard(m);
  const double t0 = now_s();
  f();
  return now_s() - t0;
}

struct KernelPoint {
  const char* name;
  const char* unit;
  double scalar_rate = 0.0;
  double batched_rate = 0.0;
  [[nodiscard]] double speedup() const {
    return scalar_rate > 0.0 ? batched_rate / scalar_rate : 0.0;
  }
};

std::vector<phy::Tap> farm_taps() {
  return {{2, {0.62, 0.0}, 0.0}, {9, {0.0, 0.55}, 0.0}, {17, {0.39, -0.3}, 0.0}};
}

phy::BasestationConfig farm_bs(Rng& rng) {
  phy::BasestationConfig bs;
  bs.scrambling_code = 16;
  bs.cpich_gain = 0.5;
  phy::DpchConfig ch;
  ch.sf = 64;
  ch.code_index = 3;
  ch.gain = 0.7;
  ch.bits.resize(256);
  for (auto& b : ch.bits) b = rng.bit() ? 1 : 0;
  bs.channels.push_back(ch);
  return bs;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  bench::title(
      "Vectorized PHY substrate — scalar reference vs batched block paths");
  bench::note(std::string("phy SIMD backend: ") + phy::simd::phy_isa_name());

  const int n = args.smoke ? 16384 : 262144;  // samples per repetition
  const int reps = args.smoke ? 3 : 8;
  volatile double sink = 0.0;  // keeps results observable

  // -- bit-identity cross-check before any timing ---------------------
  {
    Rng src(5);
    std::vector<CplxF> x(4096);
    for (auto& v : x) v = src.cgaussian(1.0);
    phy::MultipathChannel cr(farm_taps(), 3.84e6);
    phy::MultipathChannel cb(farm_taps(), 3.84e6);
    Rng r1(42), r2(42);
    std::vector<CplxF> yr, yb;
    {
      ScopedSubstrateMode m(SubstrateMode::kReference);
      yr = cr.run(x, 2.0, r1);
    }
    {
      ScopedSubstrateMode m(SubstrateMode::kBlock);
      yb = cb.run(x, 2.0, r2);
    }
    bool same = yr.size() == yb.size();
    for (std::size_t i = 0; same && i < yr.size(); ++i) {
      same = yr[i].real() == yb[i].real() && yr[i].imag() == yb[i].imag();
    }
    if (!same) {
      std::fprintf(stderr,
                   "DIVERGENCE: block substrate is not bit-identical to the "
                   "scalar reference\n");
      return 1;
    }
    bench::note("cross-check: block substrate bit-identical to reference");
  }

  std::vector<KernelPoint> kernels;

  // -- scrambling chip generation ------------------------------------
  {
    KernelPoint p{"umts_scrambler_chips", "chips_per_second"};
    const long long chips = static_cast<long long>(n) * reps;
    {
      dedhw::UmtsScrambler s(16);
      const double t = timed(SubstrateMode::kReference, [&] {
        double acc = 0.0;
        for (long long i = 0; i < chips; ++i) acc += s.next2();
        sink = sink + acc;
      });
      p.scalar_rate = static_cast<double>(chips) / t;
    }
    {
      dedhw::UmtsScrambler s(16);
      std::vector<std::uint8_t> buf(static_cast<std::size_t>(n));
      const double t = timed(SubstrateMode::kBlock, [&] {
        double acc = 0.0;
        for (int r = 0; r < reps; ++r) {
          s.next2_block(buf.data(), n);
          acc += buf[static_cast<std::size_t>(r) % buf.size()];
        }
        sink = sink + acc;
      });
      p.batched_rate = static_cast<double>(chips) / t;
    }
    kernels.push_back(p);
  }

  // Shared complex input for the channel workloads.
  Rng src(17);
  std::vector<CplxF> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = src.cgaussian(1.0);

  // -- AWGN -----------------------------------------------------------
  {
    KernelPoint p{"awgn", "samples_per_second"};
    const double total = static_cast<double>(n) * reps;
    for (const auto mode : {SubstrateMode::kReference, SubstrateMode::kBlock}) {
      Rng rng(7);
      const double t = timed(mode, [&] {
        for (int r = 0; r < reps; ++r) {
          const auto y = phy::awgn(x, 4.0, rng);
          sink = sink + y.back().real();
        }
      });
      (mode == SubstrateMode::kReference ? p.scalar_rate : p.batched_rate) =
          total / t;
    }
    kernels.push_back(p);
  }

  // -- multipath + AWGN, static channel (reported, not gated) ---------
  {
    KernelPoint p{"multipath_awgn", "samples_per_second"};
    const double total = static_cast<double>(n) * reps;
    for (const auto mode : {SubstrateMode::kReference, SubstrateMode::kBlock}) {
      phy::MultipathChannel ch(farm_taps(), 3.84e6);
      Rng rng(7);
      const double t = timed(mode, [&] {
        for (int r = 0; r < reps; ++r) {
          const auto y = ch.run(x, 0.0, rng);
          sink = sink + y.back().real();
        }
      });
      (mode == SubstrateMode::kReference ? p.scalar_rate : p.batched_rate) =
          total / t;
    }
    kernels.push_back(p);
  }

  // -- multipath with Rayleigh block fading + AWGN (the gated kernel) -
  double mp_awgn_speedup = 0.0;
  {
    KernelPoint p{"multipath_rayleigh_awgn", "samples_per_second"};
    const double total = static_cast<double>(n) * reps;
    for (const auto mode : {SubstrateMode::kReference, SubstrateMode::kBlock}) {
      phy::MultipathChannel ch(farm_taps(), 3.84e6);
      Rng fade(3);
      ch.enable_rayleigh(512, fade);
      Rng rng(7);
      const double t = timed(mode, [&] {
        for (int r = 0; r < reps; ++r) {
          const auto y = ch.run(x, 0.0, rng);
          sink = sink + y.back().real();
        }
      });
      (mode == SubstrateMode::kReference ? p.scalar_rate : p.batched_rate) =
          total / t;
    }
    mp_awgn_speedup = p.speedup();
    kernels.push_back(p);
  }

  // -- UMTS downlink transmit ----------------------------------------
  {
    KernelPoint p{"umts_downlink_tx", "chips_per_second"};
    Rng bits(1);
    const auto bs = farm_bs(bits);
    const double total = static_cast<double>(n) * reps;
    for (const auto mode : {SubstrateMode::kReference, SubstrateMode::kBlock}) {
      phy::UmtsDownlinkTx tx(bs);
      const double t = timed(mode, [&] {
        for (int r = 0; r < reps; ++r) {
          const auto y = tx.generate(n);
          sink = sink + y[0].back().real();
        }
      });
      (mode == SubstrateMode::kReference ? p.scalar_rate : p.batched_rate) =
          total / t;
    }
    kernels.push_back(p);
  }

  // -- OFDM PPDU assembly --------------------------------------------
  {
    KernelPoint p{"ofdm_build_ppdu", "ppdus_per_second"};
    Rng bits(2);
    std::vector<std::uint8_t> psdu(800);
    for (auto& b : psdu) b = bits.bit() ? 1 : 0;
    const int ppdus = args.smoke ? 40 : 400;
    phy::OfdmTransmitter tx;
    for (const auto mode : {SubstrateMode::kReference, SubstrateMode::kBlock}) {
      const double t = timed(mode, [&] {
        for (int r = 0; r < ppdus; ++r) {
          const auto y = tx.build_ppdu(psdu, 6);
          sink = sink + y.back().real();
        }
      });
      (mode == SubstrateMode::kReference ? p.scalar_rate : p.batched_rate) =
          static_cast<double>(ppdus) / t;
    }
    kernels.push_back(p);
  }

  bench::Table ktable({"kernel", "unit", "scalar", "batched", "speedup"});
  for (const auto& p : kernels) {
    ktable.row({p.name, p.unit, bench::fmt(p.scalar_rate, 0),
                bench::fmt(p.batched_rate, 0), bench::fmt(p.speedup(), 2)});
  }
  ktable.print();

  // -- end-to-end trial throughput ------------------------------------
  struct EndToEnd {
    const char* name;
    double scalar_rate = 0.0;
    double batched_rate = 0.0;
    double substrate_frac = 0.0;  // substrate share of batched trial time
    [[nodiscard]] double speedup() const {
      return scalar_rate > 0.0 ? batched_rate / scalar_rate : 0.0;
    }
  };
  std::vector<EndToEnd> e2e;
  const int trials = args.smoke ? 10 : 80;
  {
    EndToEnd e{"rake_trial"};
    farm::kernels::RakeTrial kernel;
    kernel.esn0_db = 0.0;
    for (const auto mode : {SubstrateMode::kReference, SubstrateMode::kBlock}) {
      const double t = timed(mode, [&] {
        for (int i = 1; i <= trials; ++i) {
          const auto r = kernel(static_cast<std::uint64_t>(i));
          sink = sink + static_cast<double>(r.bit_errors);
        }
      });
      (mode == SubstrateMode::kReference ? e.scalar_rate : e.batched_rate) =
          static_cast<double>(trials) / t;
    }
    {
      farm::kernels::RakeTrial sub = kernel;
      sub.substrate_only = true;
      const double t = timed(SubstrateMode::kBlock, [&] {
        for (int i = 1; i <= trials; ++i) {
          const auto r = sub(static_cast<std::uint64_t>(i));
          sink = sink + static_cast<double>(r.bits);
        }
      });
      const double full_wall = static_cast<double>(trials) / e.batched_rate;
      e.substrate_frac = full_wall > 0.0 ? t / full_wall : 0.0;
    }
    e2e.push_back(e);
  }
  {
    EndToEnd e{"wlan_trial"};
    farm::kernels::WlanTrial kernel;
    kernel.esn0_db = 10.0;
    for (const auto mode : {SubstrateMode::kReference, SubstrateMode::kBlock}) {
      const double t = timed(mode, [&] {
        for (int i = 1; i <= trials; ++i) {
          const auto r = kernel(static_cast<std::uint64_t>(i));
          sink = sink + static_cast<double>(r.bit_errors);
        }
      });
      (mode == SubstrateMode::kReference ? e.scalar_rate : e.batched_rate) =
          static_cast<double>(trials) / t;
    }
    {
      farm::kernels::WlanTrial sub = kernel;
      sub.substrate_only = true;
      const double t = timed(SubstrateMode::kBlock, [&] {
        for (int i = 1; i <= trials; ++i) {
          const auto r = sub(static_cast<std::uint64_t>(i));
          sink = sink + static_cast<double>(r.bits);
        }
      });
      const double full_wall = static_cast<double>(trials) / e.batched_rate;
      e.substrate_frac = full_wall > 0.0 ? t / full_wall : 0.0;
    }
    e2e.push_back(e);
  }

  bench::Table etable({"trial", "scalar trials/s", "batched trials/s",
                       "speedup", "substrate share"});
  for (const auto& e : e2e) {
    etable.row({e.name, bench::fmt(e.scalar_rate, 1),
                bench::fmt(e.batched_rate, 1), bench::fmt(e.speedup(), 2),
                bench::fmt(e.substrate_frac, 2)});
  }
  etable.print();
  (void)sink;

  // -- gates ----------------------------------------------------------
  bool ok = true;
  constexpr double kMinMpAwgnSpeedup = 2.0;
  if (mp_awgn_speedup < kMinMpAwgnSpeedup) {
    std::fprintf(stderr,
                 "GATE FAILED: multipath(rayleigh)+awgn speedup %.2f < %.1fx\n",
                 mp_awgn_speedup, kMinMpAwgnSpeedup);
    ok = false;
  }
  constexpr double kMinRakeSpeedup = 1.05;
  const double rake_speedup = e2e[0].speedup();
  if (!args.smoke && rake_speedup < kMinRakeSpeedup) {
    std::fprintf(stderr, "GATE FAILED: rake trial speedup %.2f < %.2fx\n",
                 rake_speedup, kMinRakeSpeedup);
    ok = false;
  }
  if (ok) {
    bench::note("gates: multipath(rayleigh)+awgn >= 2x " +
                std::string(args.smoke ? "(end-to-end gate skipped in smoke)"
                                       : "and rake trials >= 1.05x") +
                " — passed");
  }

  // -- JSON ------------------------------------------------------------
  std::string j;
  bench::appendf(j, "{\n  \"bench\": \"bench_phy\",\n");
  bench::appendf(j, "  %s,\n", bench::host_context_json().c_str());
  bench::appendf(j, "  \"phy_simd_backend\": \"%s\",\n",
                 phy::simd::phy_isa_name());
  bench::appendf(j, "  \"smoke\": %s,\n", args.smoke ? "true" : "false");
  bench::appendf(j, "  \"samples_per_rep\": %d,\n", n);
  bench::appendf(j, "  \"reps\": %d,\n", reps);
  bench::appendf(j, "  \"trials\": %d,\n", trials);
  bench::appendf(j, "  \"bit_identical_cross_check\": true,\n");
  bench::appendf(j, "  \"gate_min_multipath_rayleigh_awgn_speedup\": %s,\n",
                 bench::json_num(kMinMpAwgnSpeedup, 1).c_str());
  bench::appendf(j, "  \"gate_min_rake_trial_speedup\": %s,\n",
                 bench::json_num(kMinRakeSpeedup, 2).c_str());
  bench::appendf(j, "  \"kernels\": [\n");
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const auto& p = kernels[i];
    bench::appendf(j,
                   "    {\"name\": \"%s\", \"unit\": \"%s\", \"scalar\": %s, "
                   "\"batched\": %s, \"speedup\": %s}%s\n",
                   p.name, p.unit, bench::json_num(p.scalar_rate, 0).c_str(),
                   bench::json_num(p.batched_rate, 0).c_str(),
                   bench::json_num(p.speedup(), 2).c_str(),
                   i + 1 < kernels.size() ? "," : "");
  }
  bench::appendf(j, "  ],\n  \"end_to_end\": [\n");
  for (std::size_t i = 0; i < e2e.size(); ++i) {
    const auto& e = e2e[i];
    bench::appendf(
        j,
        "    {\"name\": \"%s\", \"scalar_trials_per_s\": %s, "
        "\"batched_trials_per_s\": %s, \"speedup\": %s, "
        "\"substrate_frac\": %s}%s\n",
        e.name, bench::json_num(e.scalar_rate, 1).c_str(),
        bench::json_num(e.batched_rate, 1).c_str(),
        bench::json_num(e.speedup(), 2).c_str(),
        bench::json_num(e.substrate_frac, 3).c_str(),
        i + 1 < e2e.size() ? "," : "");
  }
  bench::appendf(j, "  ],\n  \"gates_passed\": %s\n}\n", ok ? "true" : "false");
  if (!bench::write_json_checked("BENCH_phy.json", j)) return 1;
  bench::note("wrote BENCH_phy.json");
  return ok ? 0 : 1;
}

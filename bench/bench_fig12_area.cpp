// Figure 12: the XPP64A on 0.13 um CMOS (ST HCMOS9).
//
// The figure is a die plot; its quantitative content is reproduced as
// a calibrated area/power model (see DESIGN.md substitutions): per-PAE
// area estimates for a 24-bit datapath on 130 nm, dual-Vt leakage, and
// activity-based dynamic power measured from real workloads on the
// simulated array.
#include "bench/report.hpp"
#include "src/common/rng.hpp"
#include "src/dedhw/umts_scrambler.hpp"
#include "src/ofdm/maps.hpp"
#include "src/rake/maps.hpp"
#include "src/sdr/area_model.hpp"
#include "src/xpp/trace.hpp"

namespace {

/// Per-ObjectKind rollup of a traced run: cells occupied, total fires
/// and mean duty — the utilization column of the area table, measured
/// instead of inferred from static placement.
struct KindUsage {
  int cells = 0;
  long long fires = 0;
  long long traced = 0;
};

std::array<KindUsage, 5> summarize(const rsp::xpp::PerfCounters& pc) {
  std::array<KindUsage, 5> out{};
  for (const auto& obj : pc.paes) {
    auto& k = out[static_cast<std::size_t>(obj.kind)];
    ++k.cells;
    k.fires += obj.fires;
    k.traced += obj.traced_cycles;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // Model-evaluation harness: already smoke-sized, so --smoke is
  // accepted (ctest -L perf) without changing the workload.
  (void)rsp::bench::parse_args(argc, argv);
  using namespace rsp;
  bench::title("Figure 12 — XPP64A area/power model (0.13 um HCMOS9)");

  const xpp::ArrayGeometry g;
  const auto a = sdr::AreaModel::area(g);
  bench::Table t({"block", "area (mm^2)", "share"});
  t.row({"64x ALU-PAE", bench::fmt(a.alu_pae_mm2, 2),
         bench::fmt(a.alu_pae_mm2 / a.total_mm2, 2)});
  t.row({"16x RAM-PAE (512x24 dual-port)", bench::fmt(a.ram_pae_mm2, 2),
         bench::fmt(a.ram_pae_mm2 / a.total_mm2, 2)});
  t.row({"4x dual-channel I/O", bench::fmt(a.io_mm2, 2),
         bench::fmt(a.io_mm2 / a.total_mm2, 2)});
  t.row({"configuration manager", bench::fmt(a.config_manager_mm2, 2),
         bench::fmt(a.config_manager_mm2 / a.total_mm2, 2)});
  t.row({"global routing overhead", bench::fmt(a.routing_overhead_mm2, 2),
         bench::fmt(a.routing_overhead_mm2 / a.total_mm2, 2)});
  t.row({"TOTAL die (core)", bench::fmt(a.total_mm2, 2), "1.00"});
  t.print();

  // Activity-based power for the two application kernels, each run with
  // a tracer attached so the utilization table below is regenerated
  // from measured per-PAE counters rather than static placement.
  bench::Table p({"workload", "object fires", "cycles", "power @50 MHz (mW)"});
  xpp::PerfCounters rake_pc, fft_pc;
  {
    Rng rng(1);
    std::vector<CplxI> chips(2048);
    for (auto& c : chips) {
      c = {static_cast<int>(rng.below(1024)) - 512,
           static_cast<int>(rng.below(1024)) - 512};
    }
    dedhw::UmtsScrambler scr(16);
    std::vector<std::uint8_t> code2(chips.size());
    for (auto& c : code2) c = scr.next2();
    xpp::ConfigurationManager mgr;
    xpp::Tracer tracer;
    mgr.sim().attach_trace(&tracer);
    (void)rake::maps::run_descrambler(mgr, chips, code2);
    (void)rake::maps::run_despreader(mgr, chips, 64, 3);
    rake_pc = tracer.snapshot();
    const long long fires = mgr.sim().total_fires();
    const long long cycles = mgr.sim().cycle();
    p.row({"rake finger (descramble+despread)", bench::fmt_int(fires),
           bench::fmt_int(cycles),
           bench::fmt(sdr::AreaModel::power_mw(g, fires, cycles, 50.0e6), 1)});
  }
  {
    Rng rng(2);
    std::array<CplxI, 64> sym{};
    for (auto& c : sym) {
      c = {static_cast<int>(rng.below(1000)) - 500,
           static_cast<int>(rng.below(1000)) - 500};
    }
    xpp::ConfigurationManager mgr;
    xpp::Tracer tracer;
    mgr.sim().attach_trace(&tracer);
    for (int i = 0; i < 8; ++i) (void)ofdm::maps::run_fft64(mgr, sym);
    fft_pc = tracer.snapshot();
    const long long fires = mgr.sim().total_fires();
    const long long cycles = mgr.sim().cycle();
    p.row({"OFDM FFT64 (8 transforms)", bench::fmt_int(fires),
           bench::fmt_int(cycles),
           bench::fmt(sdr::AreaModel::power_mw(g, fires, cycles, 50.0e6), 1)});
  }
  p.print();

  // Measured per-kind utilization (traced counters): which slice of the
  // die each kernel actually exercises, and how hard.  "mean duty" is
  // fires / traced object-cycles across all cells of the kind.
  bench::Table u({"workload", "resource", "cells", "fires", "mean duty %"});
  const auto kind_rows = [&](const char* wl, const xpp::PerfCounters& pc) {
    const auto usage = summarize(pc);
    for (std::size_t k = 0; k < usage.size(); ++k) {
      const auto& ku = usage[k];
      if (ku.cells == 0) continue;
      u.row({wl, xpp::object_kind_name(static_cast<xpp::ObjectKind>(k)),
             bench::fmt_int(ku.cells), bench::fmt_int(ku.fires),
             bench::fmt(ku.traced > 0 ? 100.0 * static_cast<double>(ku.fires) /
                                            static_cast<double>(ku.traced)
                                      : 0.0,
                        1)});
    }
  };
  kind_rows("rake finger", rake_pc);
  kind_rows("OFDM FFT64", fft_pc);
  u.print();

  bench::note(
      "\nShape check: a ~30 mm^2-class 130 nm die with datapath area\n"
      "dominated by the PAE array, and sub-watt activity-based power —\n"
      "consistent with the paper's mobile-terminal power argument\n"
      "(pipeline parallelism at low clock instead of a GHz DSP).");
  return 0;
}

// Figure 12: the XPP64A on 0.13 um CMOS (ST HCMOS9).
//
// The figure is a die plot; its quantitative content is reproduced as
// a calibrated area/power model (see DESIGN.md substitutions): per-PAE
// area estimates for a 24-bit datapath on 130 nm, dual-Vt leakage, and
// activity-based dynamic power measured from real workloads on the
// simulated array.
#include "bench/report.hpp"
#include "src/common/rng.hpp"
#include "src/dedhw/umts_scrambler.hpp"
#include "src/ofdm/maps.hpp"
#include "src/rake/maps.hpp"
#include "src/sdr/area_model.hpp"

int main() {
  using namespace rsp;
  bench::title("Figure 12 — XPP64A area/power model (0.13 um HCMOS9)");

  const xpp::ArrayGeometry g;
  const auto a = sdr::AreaModel::area(g);
  bench::Table t({"block", "area (mm^2)", "share"});
  t.row({"64x ALU-PAE", bench::fmt(a.alu_pae_mm2, 2),
         bench::fmt(a.alu_pae_mm2 / a.total_mm2, 2)});
  t.row({"16x RAM-PAE (512x24 dual-port)", bench::fmt(a.ram_pae_mm2, 2),
         bench::fmt(a.ram_pae_mm2 / a.total_mm2, 2)});
  t.row({"4x dual-channel I/O", bench::fmt(a.io_mm2, 2),
         bench::fmt(a.io_mm2 / a.total_mm2, 2)});
  t.row({"configuration manager", bench::fmt(a.config_manager_mm2, 2),
         bench::fmt(a.config_manager_mm2 / a.total_mm2, 2)});
  t.row({"global routing overhead", bench::fmt(a.routing_overhead_mm2, 2),
         bench::fmt(a.routing_overhead_mm2 / a.total_mm2, 2)});
  t.row({"TOTAL die (core)", bench::fmt(a.total_mm2, 2), "1.00"});
  t.print();

  // Activity-based power for the two application kernels.
  bench::Table p({"workload", "object fires", "cycles", "power @50 MHz (mW)"});
  {
    Rng rng(1);
    std::vector<CplxI> chips(2048);
    for (auto& c : chips) {
      c = {static_cast<int>(rng.below(1024)) - 512,
           static_cast<int>(rng.below(1024)) - 512};
    }
    dedhw::UmtsScrambler scr(16);
    std::vector<std::uint8_t> code2(chips.size());
    for (auto& c : code2) c = scr.next2();
    xpp::ConfigurationManager mgr;
    (void)rake::maps::run_descrambler(mgr, chips, code2);
    (void)rake::maps::run_despreader(mgr, chips, 64, 3);
    const long long fires = mgr.sim().total_fires();
    const long long cycles = mgr.sim().cycle();
    p.row({"rake finger (descramble+despread)", bench::fmt_int(fires),
           bench::fmt_int(cycles),
           bench::fmt(sdr::AreaModel::power_mw(g, fires, cycles, 50.0e6), 1)});
  }
  {
    Rng rng(2);
    std::array<CplxI, 64> sym{};
    for (auto& c : sym) {
      c = {static_cast<int>(rng.below(1000)) - 500,
           static_cast<int>(rng.below(1000)) - 500};
    }
    xpp::ConfigurationManager mgr;
    for (int i = 0; i < 8; ++i) (void)ofdm::maps::run_fft64(mgr, sym);
    const long long fires = mgr.sim().total_fires();
    const long long cycles = mgr.sim().cycle();
    p.row({"OFDM FFT64 (8 transforms)", bench::fmt_int(fires),
           bench::fmt_int(cycles),
           bench::fmt(sdr::AreaModel::power_mw(g, fires, cycles, 50.0e6), 1)});
  }
  p.print();

  bench::note(
      "\nShape check: a ~30 mm^2-class 130 nm die with datapath area\n"
      "dominated by the PAE array, and sub-watt activity-based power —\n"
      "consistent with the paper's mobile-terminal power argument\n"
      "(pipeline parallelism at low clock instead of a GHz DSP).");
  return 0;
}

// Scheduler microbenchmark: cycles/sec of the XPP cycle simulator under
// the legacy scan-to-fixed-point scheduler versus the event-driven
// worklist scheduler, on
//  - a sparse-activity configuration: an 8x8 array holding four rake
//    despreader fingers with a single finger streaming chips (the other
//    three sit idle, as in a terminal tracking one dominant path), and
//  - the fully-dense FFT64 pipeline, where nearly every object fires
//    every cycle (worst case for worklist bookkeeping).
// Emits a machine-readable BENCH_sched.json so the perf trajectory is
// tracked across PRs.  Both schedulers' outputs are cross-checked so a
// perf run cannot silently diverge from the reference behaviour.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/report.hpp"
#include "src/common/rng.hpp"
#include "src/ofdm/maps.hpp"
#include "src/rake/maps.hpp"
#include "src/xpp/manager.hpp"

namespace rsp {
namespace {

using Clock = std::chrono::steady_clock;

struct Measurement {
  long long cycles = 0;
  long long fires = 0;
  double seconds = 0.0;
  std::vector<xpp::Word> checksum;  ///< output words, for cross-checking

  [[nodiscard]] double cycles_per_sec() const {
    return seconds > 0 ? static_cast<double>(cycles) / seconds : 0.0;
  }
};

std::vector<CplxI> random_chips(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<CplxI> out(n);
  for (auto& c : out) {
    c = {static_cast<int>(rng.below(2000)) - 1000,
         static_cast<int>(rng.below(2000)) - 1000};
  }
  return out;
}

/// Sparse activity: four despreader fingers resident on the 8x8 array,
/// chips streamed through finger 0 only.  The scan scheduler still
/// walks every object of every finger each pass; the worklist only ever
/// touches the live finger.
Measurement run_sparse(xpp::SchedulerKind kind, std::size_t n_chips) {
  const int sf = 16;
  const auto chips = random_chips(n_chips, 42);
  xpp::ConfigurationManager mgr({}, kind);
  const auto active = mgr.load(rake::maps::despreader_config(sf, 1));
  // Idle fingers: loaded, primed, but never fed.
  for (const int code : {2, 3, 5}) {
    (void)mgr.load(rake::maps::despreader_config(sf, code));
  }
  mgr.input(active, "data").feed(rake::maps::pack_stream(chips));

  Measurement m;
  const long long c0 = mgr.sim().cycle();
  const long long f0 = mgr.sim().total_fires();
  const auto t0 = Clock::now();
  mgr.sim().run_until_quiescent(static_cast<long long>(n_chips) * 8);
  m.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  m.cycles = mgr.sim().cycle() - c0;
  m.fires = mgr.sim().total_fires() - f0;
  m.checksum = mgr.output(active, "out").take();
  return m;
}

/// Dense activity: the FFT64 kernel streaming a burst of symbols; every
/// pipeline stage fires nearly every cycle.
Measurement run_dense(xpp::SchedulerKind kind, std::size_t n_symbols) {
  Rng rng(7);
  std::vector<std::array<CplxI, phy::kFftSize>> in(n_symbols);
  for (auto& sym : in) {
    for (auto& c : sym) {
      c = {static_cast<int>(rng.below(2000)) - 1000,
           static_cast<int>(rng.below(2000)) - 1000};
    }
  }
  xpp::ConfigurationManager mgr({}, kind);
  Measurement m;
  const long long c0 = mgr.sim().cycle();
  const long long f0 = mgr.sim().total_fires();
  const auto t0 = Clock::now();
  const auto out = ofdm::maps::run_fft64_batch(mgr, in);
  m.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  m.cycles = mgr.sim().cycle() - c0;
  m.fires = mgr.sim().total_fires() - f0;
  for (const auto& sym : out) {
    for (const auto& c : sym) m.checksum.push_back(pack_cplx(c));
  }
  return m;
}

template <typename Fn>
Measurement best_of(Fn&& fn, int reps) {
  Measurement best = fn();
  for (int r = 1; r < reps; ++r) {
    Measurement m = fn();
    if (m.seconds < best.seconds) best = m;
  }
  return best;
}

struct Scenario {
  const char* name;
  Measurement scan;
  Measurement event;

  [[nodiscard]] double speedup() const {
    return scan.seconds > 0 && event.seconds > 0
               ? event.cycles_per_sec() / scan.cycles_per_sec()
               : 0.0;
  }
};

void write_json(const std::vector<Scenario>& scenarios) {
  std::FILE* f = std::fopen("BENCH_sched.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_sched.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_micro_sched\",\n");
  std::fprintf(f, "  \"unit\": \"simulated_cycles_per_second\",\n");
  std::fprintf(f, "  \"scenarios\": [\n");
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const auto& s = scenarios[i];
    // Doubles go through bench::json_num so a comma-decimal LC_NUMERIC
    // locale cannot produce invalid JSON.
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"cycles\": %lld, \"fires\": %lld, "
                 "\"scan_cps\": %s, \"event_cps\": %s, "
                 "\"speedup\": %s}%s\n",
                 s.name, s.scan.cycles, s.scan.fires,
                 bench::json_num(s.scan.cycles_per_sec(), 0).c_str(),
                 bench::json_num(s.event.cycles_per_sec(), 0).c_str(),
                 bench::json_num(s.speedup(), 3).c_str(),
                 i + 1 < scenarios.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace rsp

int main() {
  using rsp::xpp::SchedulerKind;
  rsp::bench::title(
      "Scheduler microbenchmark: scan fixed-point vs event-driven worklist");

  std::vector<rsp::Scenario> scenarios;

  {
    rsp::Scenario s{"rake_single_finger_8x8", {}, {}};
    s.scan = rsp::best_of(
        [] { return rsp::run_sparse(SchedulerKind::kScan, 20000); }, 3);
    s.event = rsp::best_of(
        [] { return rsp::run_sparse(SchedulerKind::kEventDriven, 20000); }, 3);
    scenarios.push_back(std::move(s));
  }
  {
    rsp::Scenario s{"fft64_dense", {}, {}};
    s.scan = rsp::best_of(
        [] { return rsp::run_dense(SchedulerKind::kScan, 24); }, 3);
    s.event = rsp::best_of(
        [] { return rsp::run_dense(SchedulerKind::kEventDriven, 24); }, 3);
    scenarios.push_back(std::move(s));
  }

  bool identical = true;
  for (const auto& s : scenarios) {
    if (s.scan.checksum != s.event.checksum ||
        s.scan.cycles != s.event.cycles || s.scan.fires != s.event.fires) {
      identical = false;
      std::fprintf(stderr, "DIVERGENCE in scenario %s\n", s.name);
    }
  }

  rsp::bench::Table t({"scenario", "cycles", "fires", "scan cyc/s",
                       "event cyc/s", "speedup"});
  for (const auto& s : scenarios) {
    t.row({s.name, rsp::bench::fmt_int(s.scan.cycles),
           rsp::bench::fmt_int(s.scan.fires),
           rsp::bench::fmt(s.scan.cycles_per_sec(), 0),
           rsp::bench::fmt(s.event.cycles_per_sec(), 0),
           rsp::bench::fmt(s.speedup(), 2) + "x"});
  }
  t.print();
  rsp::bench::note(identical
                       ? "cross-check: schedulers bit-identical (cycles, "
                         "fires, outputs)"
                       : "cross-check: FAILED — schedulers diverged");
  rsp::bench::note("targets: sparse >= 3.0x, dense >= 0.9x");
  rsp::write_json(scenarios);
  rsp::bench::note("wrote BENCH_sched.json");
  return identical ? 0 : 1;
}

// Scheduler microbenchmark: cycles/sec of the XPP cycle simulator under
// the legacy scan-to-fixed-point scheduler, the event-driven worklist
// scheduler, and the compiled epoch-replay scheduler, on
//  - a sparse-activity configuration: an 8x8 array holding four rake
//    despreader fingers with a single finger streaming chips (the other
//    three sit idle, as in a terminal tracking one dominant path),
//  - the fully-dense FFT64 pipeline, where nearly every object fires
//    every cycle (worst case for worklist bookkeeping),
//  - the UMTS descrambler streaming a chip burst (period-1 steady
//    state, best case for epoch replay), and
//  - a lone despreader finger at SF=16 (epoch replay between
//    accumulator dumps, guard deopt across them).
// Emits a machine-readable BENCH_sched.json so the perf trajectory is
// tracked across PRs.  All schedulers' outputs are cross-checked so a
// perf run cannot silently diverge from the reference behaviour.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/report.hpp"
#include "src/common/rng.hpp"
#include "src/dedhw/umts_scrambler.hpp"
#include "src/ofdm/maps.hpp"
#include "src/rake/maps.hpp"
#include "src/xpp/manager.hpp"

namespace rsp {
namespace {

using Clock = std::chrono::steady_clock;

struct Measurement {
  long long cycles = 0;
  long long fires = 0;
  double seconds = 0.0;
  std::vector<xpp::Word> checksum;  ///< output words, for cross-checking

  [[nodiscard]] double cycles_per_sec() const {
    return seconds > 0 ? static_cast<double>(cycles) / seconds : 0.0;
  }
};

std::vector<CplxI> random_chips(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<CplxI> out(n);
  for (auto& c : out) {
    c = {static_cast<int>(rng.below(2000)) - 1000,
         static_cast<int>(rng.below(2000)) - 1000};
  }
  return out;
}

/// Sparse activity: four despreader fingers resident on the 8x8 array,
/// chips streamed through finger 0 only.  The scan scheduler still
/// walks every object of every finger each pass; the worklist only ever
/// touches the live finger.
Measurement run_sparse(xpp::SchedulerKind kind, std::size_t n_chips) {
  const int sf = 16;
  const auto chips = random_chips(n_chips, 42);
  xpp::ConfigurationManager mgr({}, kind);
  const auto active = mgr.load(rake::maps::despreader_config(sf, 1));
  // Idle fingers: loaded, primed, but never fed.
  for (const int code : {2, 3, 5}) {
    (void)mgr.load(rake::maps::despreader_config(sf, code));
  }
  mgr.input(active, "data").feed(rake::maps::pack_stream(chips));

  Measurement m;
  const long long c0 = mgr.sim().cycle();
  const long long f0 = mgr.sim().total_fires();
  const auto t0 = Clock::now();
  mgr.sim().run_until_quiescent(static_cast<long long>(n_chips) * 8);
  m.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  m.cycles = mgr.sim().cycle() - c0;
  m.fires = mgr.sim().total_fires() - f0;
  m.checksum = mgr.output(active, "out").take();
  return m;
}

/// Dense activity: the FFT64 kernel streaming a burst of symbols; every
/// pipeline stage fires nearly every cycle.
Measurement run_dense(xpp::SchedulerKind kind, std::size_t n_symbols) {
  Rng rng(7);
  std::vector<std::array<CplxI, phy::kFftSize>> in(n_symbols);
  for (auto& sym : in) {
    for (auto& c : sym) {
      c = {static_cast<int>(rng.below(2000)) - 1000,
           static_cast<int>(rng.below(2000)) - 1000};
    }
  }
  xpp::ConfigurationManager mgr({}, kind);
  Measurement m;
  const long long c0 = mgr.sim().cycle();
  const long long f0 = mgr.sim().total_fires();
  const auto t0 = Clock::now();
  const auto out = ofdm::maps::run_fft64_batch(mgr, in);
  m.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  m.cycles = mgr.sim().cycle() - c0;
  m.fires = mgr.sim().total_fires() - f0;
  for (const auto& sym : out) {
    for (const auto& c : sym) m.checksum.push_back(pack_cplx(c));
  }
  return m;
}

/// Descrambler streaming a chip burst against its scrambling code — the
/// canonical period-1 steady state for epoch replay.
Measurement run_descrambler(xpp::SchedulerKind kind, std::size_t n_chips) {
  const auto chips = random_chips(n_chips, 13);
  dedhw::UmtsScrambler scr(16);
  std::vector<xpp::Word> code(n_chips);
  for (auto& c : code) c = scr.next2() & 3;
  xpp::ConfigurationManager mgr({}, kind);
  const auto id = mgr.load(rake::maps::descrambler_config());
  mgr.input(id, "data").feed(rake::maps::pack_stream(chips));
  mgr.input(id, "code").feed(code);

  Measurement m;
  const long long c0 = mgr.sim().cycle();
  const long long f0 = mgr.sim().total_fires();
  const auto t0 = Clock::now();
  mgr.sim().run_until_quiescent(static_cast<long long>(n_chips) * 8);
  m.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  m.cycles = mgr.sim().cycle() - c0;
  m.fires = mgr.sim().total_fires() - f0;
  m.checksum = mgr.output(id, "out").take();
  return m;
}

/// A lone despreader finger at SF=16: epoch replay between accumulator
/// dumps, guard deopt at each dump.
Measurement run_despreader(xpp::SchedulerKind kind, std::size_t n_chips) {
  const auto chips = random_chips(n_chips, 29);
  xpp::ConfigurationManager mgr({}, kind);
  const auto id = mgr.load(rake::maps::despreader_config(16, 1));
  mgr.input(id, "data").feed(rake::maps::pack_stream(chips));

  Measurement m;
  const long long c0 = mgr.sim().cycle();
  const long long f0 = mgr.sim().total_fires();
  const auto t0 = Clock::now();
  mgr.sim().run_until_quiescent(static_cast<long long>(n_chips) * 8);
  m.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  m.cycles = mgr.sim().cycle() - c0;
  m.fires = mgr.sim().total_fires() - f0;
  m.checksum = mgr.output(id, "out").take();
  return m;
}

template <typename Fn>
Measurement best_of(Fn&& fn, int reps) {
  Measurement best = fn();
  for (int r = 1; r < reps; ++r) {
    Measurement m = fn();
    if (m.seconds < best.seconds) best = m;
  }
  return best;
}

struct Scenario {
  const char* name;
  Measurement scan;
  Measurement event;
  Measurement comp;

  [[nodiscard]] double speedup() const {
    return scan.seconds > 0 && event.seconds > 0
               ? event.cycles_per_sec() / scan.cycles_per_sec()
               : 0.0;
  }
  [[nodiscard]] double compiled_speedup() const {
    return event.seconds > 0 && comp.seconds > 0
               ? comp.cycles_per_sec() / event.cycles_per_sec()
               : 0.0;
  }
};

std::string render_json(const std::vector<Scenario>& scenarios, bool smoke) {
  std::string j;
  bench::appendf(j, "{\n  \"bench\": \"bench_micro_sched\",\n");
  bench::appendf(j, "  %s,\n", bench::host_context_json().c_str());
  bench::appendf(j, "  \"unit\": \"simulated_cycles_per_second\",\n");
  bench::appendf(j, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  bench::appendf(j, "  \"scenarios\": [\n");
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const auto& s = scenarios[i];
    // Doubles go through bench::json_num so a comma-decimal LC_NUMERIC
    // locale cannot produce invalid JSON.
    bench::appendf(j,
                   "    {\"name\": \"%s\", \"cycles\": %lld, \"fires\": %lld, "
                   "\"scan_cps\": %s, \"event_cps\": %s, \"compiled_cps\": %s, "
                   "\"speedup\": %s, \"compiled_speedup\": %s}%s\n",
                   s.name, s.scan.cycles, s.scan.fires,
                   bench::json_num(s.scan.cycles_per_sec(), 0).c_str(),
                   bench::json_num(s.event.cycles_per_sec(), 0).c_str(),
                   bench::json_num(s.comp.cycles_per_sec(), 0).c_str(),
                   bench::json_num(s.speedup(), 3).c_str(),
                   bench::json_num(s.compiled_speedup(), 3).c_str(),
                   i + 1 < scenarios.size() ? "," : "");
  }
  bench::appendf(j, "  ]\n}\n");
  return j;
}

}  // namespace
}  // namespace rsp

int main(int argc, char** argv) {
  using rsp::xpp::SchedulerKind;
  const rsp::bench::Args args = rsp::bench::parse_args(argc, argv);
  rsp::bench::title(
      "Scheduler microbenchmark: scan fixed-point vs event-driven worklist "
      "vs compiled epochs");

  const int reps = args.smoke ? 1 : 3;
  const std::size_t chips = args.smoke ? 1024 : 20000;
  const std::size_t symbols = args.smoke ? 2 : 24;

  std::vector<rsp::Scenario> scenarios;
  struct Gen {
    const char* name;
    rsp::Measurement (*fn)(rsp::xpp::SchedulerKind, std::size_t);
    std::size_t n;
  };
  const Gen gens[] = {
      {"rake_single_finger_8x8", rsp::run_sparse, chips},
      {"fft64_dense", rsp::run_dense, symbols},
      {"descrambler_stream", rsp::run_descrambler, chips},
      {"despreader_sf16", rsp::run_despreader, chips},
  };
  for (const Gen& g : gens) {
    rsp::Scenario s{g.name, {}, {}, {}};
    s.scan =
        rsp::best_of([&] { return g.fn(SchedulerKind::kScan, g.n); }, reps);
    s.event = rsp::best_of(
        [&] { return g.fn(SchedulerKind::kEventDriven, g.n); }, reps);
    s.comp =
        rsp::best_of([&] { return g.fn(SchedulerKind::kCompiled, g.n); }, reps);
    scenarios.push_back(std::move(s));
  }

  bool identical = true;
  for (const auto& s : scenarios) {
    if (s.scan.checksum != s.event.checksum ||
        s.scan.checksum != s.comp.checksum || s.scan.cycles != s.event.cycles ||
        s.scan.cycles != s.comp.cycles || s.scan.fires != s.event.fires ||
        s.scan.fires != s.comp.fires) {
      identical = false;
      std::fprintf(stderr, "DIVERGENCE in scenario %s\n", s.name);
    }
  }

  rsp::bench::Table t({"scenario", "cycles", "fires", "scan cyc/s",
                       "event cyc/s", "compiled cyc/s", "event/scan",
                       "compiled/event"});
  for (const auto& s : scenarios) {
    t.row({s.name, rsp::bench::fmt_int(s.scan.cycles),
           rsp::bench::fmt_int(s.scan.fires),
           rsp::bench::fmt(s.scan.cycles_per_sec(), 0),
           rsp::bench::fmt(s.event.cycles_per_sec(), 0),
           rsp::bench::fmt(s.comp.cycles_per_sec(), 0),
           rsp::bench::fmt(s.speedup(), 2) + "x",
           rsp::bench::fmt(s.compiled_speedup(), 2) + "x"});
  }
  t.print();
  rsp::bench::note(identical
                       ? "cross-check: schedulers bit-identical (cycles, "
                         "fires, outputs)"
                       : "cross-check: FAILED — schedulers diverged");
  rsp::bench::note("targets: sparse event/scan >= 3.0x, dense >= 0.9x");
  const bool wrote = rsp::bench::write_json_checked(
      "BENCH_sched.json", rsp::render_json(scenarios, args.smoke));
  if (wrote) rsp::bench::note("wrote BENCH_sched.json");
  return identical && wrote ? 0 : 1;
}

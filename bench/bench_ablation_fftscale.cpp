// Ablation: the FFT64 per-stage 2-bit scaling (paper: "With every
// stage a scaling (2-bit right shift) is required to prevent
// overflow").
//
// Runs the fixed-point FFT64 datapath with the paper's scaling and
// without it (twiddle shift only), measuring saturation events and
// SQNR vs. the float reference across input drive levels.
#include <cmath>

#include "bench/report.hpp"
#include "src/common/dbmath.hpp"
#include "src/common/rng.hpp"
#include "src/phy/fft.hpp"

namespace {

using namespace rsp;
using phy::kFftSize;

/// Local re-implementation of the stage datapath with a configurable
/// per-branch shift, counting 12-bit saturation events.
struct Variant {
  int branch_shift;  // 13 = paper (11 twiddle + 2 scaling); 11 = no scaling
  long long saturations = 0;

  CplxI clip(CplxI z) {
    const CplxI s = sat_cplx(z, kHalfBits);
    if (s.re != z.re || s.im != z.im) ++saturations;
    return s;
  }

  std::array<CplxI, kFftSize> run(const std::array<CplxI, kFftSize>& in) {
    const auto& t = phy::fft64_tables();
    std::array<CplxI, kFftSize> x{};
    for (int n = 0; n < kFftSize; ++n) {
      x[static_cast<std::size_t>(t.input_perm[static_cast<std::size_t>(n)])] =
          in[static_cast<std::size_t>(n)];
    }
    for (int s = 0; s < phy::kFftStages; ++s) {
      const auto& st = t.stages[static_cast<std::size_t>(s)];
      for (int bf = 0; bf < 16; ++bf) {
        const auto& addr = st.addr[static_cast<std::size_t>(bf)];
        const auto& twi = st.twiddle[static_cast<std::size_t>(bf)];
        CplxI v[4];
        for (int m = 0; m < 4; ++m) {
          const CplxI p =
              x[static_cast<std::size_t>(addr[static_cast<std::size_t>(m)])] *
              t.rom[static_cast<std::size_t>(twi[static_cast<std::size_t>(m)])];
          v[m] = clip(shr_round(p, branch_shift));
        }
        const CplxI t0 = clip(v[0] + v[2]);
        const CplxI t1 = clip(v[0] - v[2]);
        const CplxI t2 = clip(v[1] + v[3]);
        const CplxI d = clip(v[1] - v[3]);
        const CplxI t3 = clip({d.im, -d.re});
        x[static_cast<std::size_t>(addr[0])] = clip(t0 + t2);
        x[static_cast<std::size_t>(addr[1])] = clip(t1 + t3);
        x[static_cast<std::size_t>(addr[2])] = clip(t0 - t2);
        x[static_cast<std::size_t>(addr[3])] = clip(t1 - t3);
      }
    }
    return x;
  }
};

double sqnr_vs_float(const std::array<CplxI, kFftSize>& in,
                     const std::array<CplxI, kFftSize>& out, double gain) {
  std::vector<CplxF> xf(kFftSize);
  for (int n = 0; n < kFftSize; ++n) {
    xf[static_cast<std::size_t>(n)] = {
        static_cast<double>(in[static_cast<std::size_t>(n)].re),
        static_cast<double>(in[static_cast<std::size_t>(n)].im)};
  }
  phy::fft(xf, false);
  double sig = 0.0;
  double err = 0.0;
  for (int k = 0; k < kFftSize; ++k) {
    const CplxF ref = xf[static_cast<std::size_t>(k)] * gain;
    const CplxF got{static_cast<double>(out[static_cast<std::size_t>(k)].re),
                    static_cast<double>(out[static_cast<std::size_t>(k)].im)};
    sig += std::norm(ref);
    err += std::norm(ref - got);
  }
  return lin_to_db(sig / err);
}

}  // namespace

int main(int argc, char** argv) {
  // Model-evaluation harness: already smoke-sized, so --smoke is
  // accepted (ctest -L perf) without changing the workload.
  (void)rsp::bench::parse_args(argc, argv);
  bench::title("Ablation — FFT64 per-stage 2-bit scaling on/off");

  bench::Table t({"input drive (bits)", "variant", "saturations/transform",
                  "SQNR vs float (dB)"});
  Rng rng(3);
  for (const int bits : {8, 9, 10}) {
    const int amp = (1 << (bits - 1)) - 1;
    std::array<CplxI, kFftSize> in{};
    for (auto& c : in) {
      c = {static_cast<int>(rng.below(static_cast<std::uint32_t>(2 * amp))) -
               amp,
           static_cast<int>(rng.below(static_cast<std::uint32_t>(2 * amp))) -
               amp};
    }
    for (const int shift : {13, 11}) {
      Variant v{shift};
      const auto out = v.run(in);
      // Output gain: with scaling, DFT/64; without, DFT/(64/4^3) = DFT.
      const double gain = (shift == 13) ? 1.0 / 64.0 : 1.0;
      t.row({bench::fmt_int(bits),
             shift == 13 ? "2-bit/stage scaling (paper)" : "no stage scaling",
             bench::fmt_int(v.saturations),
             bench::fmt(sqnr_vs_float(in, out, gain), 1)});
    }
  }
  t.print();

  bench::note(
      "\nShape check: without the per-stage shift the 12-bit datapath\n"
      "saturates massively at realistic drive levels and the transform\n"
      "is destroyed; with the paper's scaling there are zero saturation\n"
      "events and the result holds the expected ~4-bit precision.");
  return 0;
}

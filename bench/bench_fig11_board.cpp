// Figure 11: the SDR evaluation board — microcontroller + DSP +
// streaming FPGA + XPP array — operating as a multi-link terminal:
// UMTS rake slices and WLAN OFDM slices time-multiplexed over the same
// reconfigurable array.
#include <algorithm>

#include "bench/report.hpp"
#include "src/common/rng.hpp"
#include "src/ofdm/maps.hpp"
#include "src/rake/golden.hpp"
#include "src/rake/maps.hpp"
#include "src/sdr/board.hpp"

int main(int argc, char** argv) {
  // Model-evaluation harness: already smoke-sized, so --smoke is
  // accepted (ctest -L perf) without changing the workload.
  (void)rsp::bench::parse_args(argc, argv);
  using namespace rsp;
  bench::title("Figure 11 — SDR evaluation board, multi-link operation");

  sdr::SdrBoard board;
  sdr::TimeSlicer slicer(board.array());
  Rng rng(21);

  // Workloads: a rake finger slice (descramble+despread a chip burst)
  // and a WLAN slice (one FFT64 on the array).
  std::vector<CplxI> chips(2048);
  for (auto& c : chips) {
    c = {static_cast<int>(rng.below(1024)) - 512,
         static_cast<int>(rng.below(1024)) - 512};
  }
  std::vector<std::uint8_t> code2(chips.size());
  dedhw::UmtsScrambler scr(16);
  for (auto& c : code2) c = scr.next2();
  std::array<CplxI, 64> sym{};
  for (auto& c : sym) {
    c = {static_cast<int>(rng.below(1000)) - 500,
         static_cast<int>(rng.below(1000)) - 500};
  }

  for (int round = 0; round < 4; ++round) {
    slicer.slice("UMTS rake", [&](xpp::ConfigurationManager& mgr) {
      board.fpga_route(static_cast<long long>(chips.size()));
      const auto d = rake::maps::run_descrambler(mgr, chips, code2);
      (void)rake::maps::run_despreader(mgr, d, 64, 3);
      board.dsp().charge("rake control", dsp::DspOp::kAlu, 200);
    });
    slicer.slice("WLAN OFDM", [&](xpp::ConfigurationManager& mgr) {
      // One OFDM symbol burst; the FFT kernel stays resident across it.
      board.fpga_route(4 * 64);
      (void)ofdm::maps::run_fft64_batch(mgr, {sym, sym, sym, sym});
      board.dsp().charge("wlan control", dsp::DspOp::kAlu, 150);
    });
    board.microcontroller().charge("housekeeping", dsp::DspOp::kBranch, 50);
  }

  bench::Table t({"slice", "cycles", "config cycles", "peak ALU", "peak RAM"});
  for (const auto& r : slicer.history()) {
    t.row({r.name, bench::fmt_int(r.cycles), bench::fmt_int(r.config_cycles),
           bench::fmt_int(r.peak_alu_cells), bench::fmt_int(r.peak_ram_cells)});
  }
  t.print();

  bench::Table s({"metric", "value"});
  s.row({"total array cycles", bench::fmt_int(slicer.total_cycles())});
  s.row({"configuration overhead",
         bench::fmt(100.0 * slicer.config_overhead(), 1) + " %"});
  s.row({"peak ALU cells (time-sliced shared array)",
         bench::fmt_int(slicer.peak_alu_cells())});
  s.row({"sum of per-protocol peaks (dedicated design)",
         bench::fmt_int(slicer.sum_alu_cells())});
  s.row({"resource saving",
         bench::fmt(100.0 * (1.0 - static_cast<double>(slicer.peak_alu_cells()) /
                                       static_cast<double>(
                                           slicer.sum_alu_cells())),
                    1) + " %"});
  s.row({"FPGA words routed", bench::fmt_int(board.fpga_words_routed())});
  s.row({"DSP instructions", bench::fmt_int(board.dsp().total_instructions())});
  s.row({"microcontroller instructions",
         bench::fmt_int(board.microcontroller().total_instructions())});
  s.print();

  bench::note(
      "\nShape check: \"by time-slicing the processing of both protocols\n"
      "over the same hardware, a large savings in the resources required\n"
      "can be achieved\" — the shared array needs only the larger of the\n"
      "two protocol footprints, and reconfiguration overhead stays a\n"
      "small fraction of the useful cycles.");
  return 0;
}

// Ablation: one time-multiplexed physical finger vs. N parallel
// physical fingers on the array.
//
// The paper implements a single physical finger at N x 3.84 MHz.  The
// alternative — N physical finger datapaths at chip rate — burns N x
// the PAEs.  This bench loads both designs and reports the trade.
#include "bench/report.hpp"
#include "src/rake/maps.hpp"
#include "src/rake/scenario.hpp"
#include "src/xpp/manager.hpp"

int main(int argc, char** argv) {
  // Model-evaluation harness: already smoke-sized, so --smoke is
  // accepted (ctest -L perf) without changing the workload.
  (void)rsp::bench::parse_args(argc, argv);
  using namespace rsp;
  bench::title("Ablation — time-multiplexed finger vs parallel fingers");

  const auto one_finger = rake::maps::despreader_config(64, 3);
  const int per_finger_alu = one_finger.alu_demand();
  const int per_finger_ram = one_finger.ram_demand();

  bench::Table t({"fingers", "design", "ALU-PAEs", "RAM-PAEs",
                  "clock needed (MHz)", "fits XPP-64A"});
  const xpp::ArrayGeometry g;
  for (const int n : {1, 3, 6, 18}) {
    // Parallel design: n despreader instances.
    const int alu = per_finger_alu * n;
    const int ram = per_finger_ram * n;
    const bool fits = alu <= g.alu_count() && ram <= g.ram_count() &&
                      3 * n <= 999;  // I/O shared in a real design
    t.row({bench::fmt_int(n), "parallel", bench::fmt_int(alu),
           bench::fmt_int(ram), bench::fmt(3.84, 2),
           fits ? "yes" : "NO (PAEs exhausted)"});
    t.row({bench::fmt_int(n), "time-multiplexed (paper)",
           bench::fmt_int(per_finger_alu), bench::fmt_int(per_finger_ram),
           bench::fmt(3.84 * n, 2),
           3.84e6 * n <= rake::kMaxFingerClockHz ? "yes" : "NO (clock)"});
  }
  t.print();

  // Demonstrate the parallel design actually exhausting the array: try
  // to load 18 despreader instances.
  xpp::ConfigurationManager mgr;
  int loaded = 0;
  std::vector<xpp::ConfigId> ids;
  try {
    for (int i = 0; i < 18; ++i) {
      // Rename objects per instance to keep configs distinct.
      auto cfg = rake::maps::despreader_config(64, 3);
      cfg.name += "_" + std::to_string(i);
      ids.push_back(mgr.load(cfg));
      ++loaded;
    }
  } catch (const xpp::ConfigError& e) {
    bench::note(std::string("\nparallel load stopped at ") +
                std::to_string(loaded) + " fingers: " + e.what());
  }
  for (const auto id : ids) mgr.release(id);

  bench::note(
      "\nShape check: the array cannot host 18 parallel finger datapaths\n"
      "(I/O and PAE limits), while the single physical finger at\n"
      "69.12 MHz serves the same scenario with ~1/18th of the resources —\n"
      "the paper's Section 3.1 design decision.");
  return 0;
}

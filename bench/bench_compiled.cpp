// Compiled epoch-replay benchmark: simulated cycles/sec of the XPP
// simulator under all three schedulers — legacy scan fixed-point,
// event-driven worklist, and compiled steady-state epoch replay — on
// the paper's streaming steady-state workloads:
//  - the UMTS descrambler streaming a long chip burst (structural
//    period 1: the epoch engine replays essentially the whole run),
//  - a single rake despreader finger at SF=16 (control values flip at
//    every accumulator dump; the engine replays between dumps and
//    guard-deoptimizes across them), and
//  - the dense FFT64 pipeline streaming a symbol batch.
// All three schedulers' outputs, cycle counts and fire counts are
// cross-checked word-for-word, so a perf win can never come from
// diverging behaviour.  Emits BENCH_compiled.json.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/report.hpp"
#include "src/common/rng.hpp"
#include "src/dedhw/umts_scrambler.hpp"
#include "src/ofdm/maps.hpp"
#include "src/rake/maps.hpp"
#include "src/xpp/batch.hpp"
#include "src/xpp/compiled.hpp"
#include "src/xpp/manager.hpp"

namespace rsp {
namespace {

using Clock = std::chrono::steady_clock;

struct Measurement {
  long long cycles = 0;
  long long fires = 0;
  double seconds = 0.0;
  std::vector<xpp::Word> checksum;
  xpp::CompiledStats compiled;  ///< zeros for the interpreters

  [[nodiscard]] double cycles_per_sec() const {
    return seconds > 0 ? static_cast<double>(cycles) / seconds : 0.0;
  }
};

std::vector<CplxI> random_chips(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<CplxI> out(n);
  for (auto& c : out) {
    c = {static_cast<int>(rng.below(2000)) - 1000,
         static_cast<int>(rng.below(2000)) - 1000};
  }
  return out;
}

void finish(Measurement& m, xpp::ConfigurationManager& mgr, long long c0,
            long long f0, Clock::time_point t0) {
  m.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  m.cycles = mgr.sim().cycle() - c0;
  m.fires = mgr.sim().total_fires() - f0;
  if (const xpp::CompiledEngine* eng = mgr.sim().compiled_engine()) {
    m.compiled = eng->stats();
  }
}

/// Streaming descrambler: chips and scrambling code fed up front, run
/// to quiescence.  The steady state is a one-cycle epoch.
Measurement run_descrambler(xpp::SchedulerKind kind, std::size_t n_chips) {
  const auto chips = random_chips(n_chips, 42);
  dedhw::UmtsScrambler scr(16);
  std::vector<xpp::Word> code(n_chips);
  for (auto& c : code) c = scr.next2() & 3;

  xpp::ConfigurationManager mgr({}, kind);
  const auto id = mgr.load(rake::maps::descrambler_config());
  mgr.input(id, "data").feed(rake::maps::pack_stream(chips));
  mgr.input(id, "code").feed(code);

  Measurement m;
  const long long c0 = mgr.sim().cycle();
  const long long f0 = mgr.sim().total_fires();
  const auto t0 = Clock::now();
  mgr.sim().run_until_quiescent(static_cast<long long>(n_chips) * 8);
  finish(m, mgr, c0, f0, t0);
  m.checksum = mgr.output(id, "out").take();
  return m;
}

/// Streaming despreader finger at SF=16: the epoch engine replays the
/// inter-dump steady state and deoptimizes across each dump.
Measurement run_despreader(xpp::SchedulerKind kind, std::size_t n_chips) {
  const int sf = 16;
  const auto chips = random_chips(n_chips, 7);
  xpp::ConfigurationManager mgr({}, kind);
  const auto id = mgr.load(rake::maps::despreader_config(sf, 1));
  mgr.input(id, "data").feed(rake::maps::pack_stream(chips));

  Measurement m;
  const long long c0 = mgr.sim().cycle();
  const long long f0 = mgr.sim().total_fires();
  const auto t0 = Clock::now();
  mgr.sim().run_until_quiescent(static_cast<long long>(n_chips) * 8);
  finish(m, mgr, c0, f0, t0);
  m.checksum = mgr.output(id, "out").take();
  return m;
}

/// Dense FFT64 pipeline streaming a symbol batch.  The stages arrive
/// by delta reconfiguration (run_fft64_batch); with a shared program
/// cache attached, the compiled engine publishes each stage's detected
/// program once and cold-adopts it on every later encounter of the
/// same stage CRC — the fleet serving layer's compile-once/replay-many
/// fast re-arm, here amortized across the best-of repetitions.
Measurement run_fft(xpp::SchedulerKind kind, std::size_t n_symbols,
                    xpp::BatchProgramCache* cache = nullptr) {
  Rng rng(7);
  std::vector<std::array<CplxI, phy::kFftSize>> in(n_symbols);
  for (auto& sym : in) {
    for (auto& c : sym) {
      c = {static_cast<int>(rng.below(2000)) - 1000,
           static_cast<int>(rng.below(2000)) - 1000};
    }
  }
  xpp::ConfigurationManager mgr({}, kind);
  if (cache != nullptr) mgr.attach_program_cache(cache);
  Measurement m;
  const long long c0 = mgr.sim().cycle();
  const long long f0 = mgr.sim().total_fires();
  const auto t0 = Clock::now();
  const auto out = ofdm::maps::run_fft64_batch(mgr, in);
  finish(m, mgr, c0, f0, t0);
  for (const auto& sym : out) {
    for (const auto& c : sym) m.checksum.push_back(pack_cplx(c));
  }
  return m;
}

template <typename Fn>
Measurement best_of(Fn&& fn, int reps) {
  Measurement best = fn();
  for (int r = 1; r < reps; ++r) {
    Measurement m = fn();
    if (m.seconds < best.seconds) best = m;
  }
  return best;
}

struct Scenario {
  const char* name;
  Measurement scan;
  Measurement event;
  Measurement comp;

  [[nodiscard]] double speedup_vs_event() const {
    return event.seconds > 0 && comp.seconds > 0
               ? comp.cycles_per_sec() / event.cycles_per_sec()
               : 0.0;
  }
  [[nodiscard]] double speedup_vs_scan() const {
    return scan.seconds > 0 && comp.seconds > 0
               ? comp.cycles_per_sec() / scan.cycles_per_sec()
               : 0.0;
  }
  [[nodiscard]] double replay_fraction() const {
    return comp.cycles > 0 ? static_cast<double>(comp.compiled.replayed_cycles) /
                                 static_cast<double>(comp.cycles)
                           : 0.0;
  }
};

std::string render_json(const std::vector<Scenario>& scenarios, bool smoke) {
  std::string j;
  bench::appendf(j, "{\n  \"bench\": \"bench_compiled\",\n");
  bench::appendf(j, "  %s,\n", bench::host_context_json().c_str());
  bench::appendf(j, "  \"unit\": \"simulated_cycles_per_second\",\n");
  bench::appendf(j, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  bench::appendf(j, "  \"scenarios\": [\n");
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const auto& s = scenarios[i];
    bench::appendf(j,
                   "    {\"name\": \"%s\", \"cycles\": %lld, \"fires\": %lld,\n"
                   "     \"scan_cps\": %s, \"event_cps\": %s, "
                   "\"compiled_cps\": %s,\n"
                   "     \"speedup_vs_event\": %s, \"speedup_vs_scan\": %s,\n"
                   "     \"replay_fraction\": %s, \"arms\": %lld, "
                   "\"deopts\": %lld, \"compiles\": %lld}%s\n",
                   s.name, s.comp.cycles, s.comp.fires,
                   bench::json_num(s.scan.cycles_per_sec(), 0).c_str(),
                   bench::json_num(s.event.cycles_per_sec(), 0).c_str(),
                   bench::json_num(s.comp.cycles_per_sec(), 0).c_str(),
                   bench::json_num(s.speedup_vs_event(), 3).c_str(),
                   bench::json_num(s.speedup_vs_scan(), 3).c_str(),
                   bench::json_num(s.replay_fraction(), 3).c_str(),
                   s.comp.compiled.arms, s.comp.compiled.deopts,
                   s.comp.compiled.compiles,
                   i + 1 < scenarios.size() ? "," : "");
  }
  bench::appendf(j, "  ]\n}\n");
  return j;
}

}  // namespace
}  // namespace rsp

int main(int argc, char** argv) {
  using rsp::xpp::SchedulerKind;
  const rsp::bench::Args args = rsp::bench::parse_args(argc, argv);
  rsp::bench::title(
      "Compiled epoch replay: scan vs event-driven vs compiled cycles/sec");

  const int reps = args.smoke ? 1 : 3;
  const std::size_t chips = args.smoke ? 2048 : 100000;
  const std::size_t symbols = args.smoke ? 4 : 24;

  std::vector<rsp::Scenario> scenarios;
  {
    rsp::Scenario s{"rake_descrambler_stream", {}, {}, {}};
    s.scan = rsp::best_of(
        [&] { return rsp::run_descrambler(SchedulerKind::kScan, chips); }, reps);
    s.event = rsp::best_of(
        [&] { return rsp::run_descrambler(SchedulerKind::kEventDriven, chips); },
        reps);
    s.comp = rsp::best_of(
        [&] { return rsp::run_descrambler(SchedulerKind::kCompiled, chips); },
        reps);
    scenarios.push_back(std::move(s));
  }
  {
    rsp::Scenario s{"rake_despreader_sf16", {}, {}, {}};
    s.scan = rsp::best_of(
        [&] { return rsp::run_despreader(SchedulerKind::kScan, chips); }, reps);
    s.event = rsp::best_of(
        [&] { return rsp::run_despreader(SchedulerKind::kEventDriven, chips); },
        reps);
    s.comp = rsp::best_of(
        [&] { return rsp::run_despreader(SchedulerKind::kCompiled, chips); },
        reps);
    scenarios.push_back(std::move(s));
  }
  {
    rsp::Scenario s{"fft64_stream", {}, {}, {}};
    s.scan = rsp::best_of(
        [&] { return rsp::run_fft(SchedulerKind::kScan, symbols); }, reps);
    s.event = rsp::best_of(
        [&] { return rsp::run_fft(SchedulerKind::kEventDriven, symbols); },
        reps);
    // One program cache across the compiled repetitions: stage
    // programs detected in rep 1 are adopted on every later stage
    // switch (bit-identity still cross-checked below).
    rsp::xpp::BatchProgramCache fft_cache;
    s.comp = rsp::best_of(
        [&] {
          return rsp::run_fft(SchedulerKind::kCompiled, symbols, &fft_cache);
        },
        reps);
    scenarios.push_back(std::move(s));
  }

  bool identical = true;
  for (const auto& s : scenarios) {
    const bool ok = s.scan.checksum == s.event.checksum &&
                    s.scan.checksum == s.comp.checksum &&
                    s.scan.cycles == s.event.cycles &&
                    s.scan.cycles == s.comp.cycles &&
                    s.scan.fires == s.event.fires &&
                    s.scan.fires == s.comp.fires;
    if (!ok) {
      identical = false;
      std::fprintf(stderr, "DIVERGENCE in scenario %s\n", s.name);
    }
  }

  rsp::bench::Table t({"scenario", "cycles", "scan cyc/s", "event cyc/s",
                       "compiled cyc/s", "vs event", "replay frac"});
  for (const auto& s : scenarios) {
    t.row({s.name, rsp::bench::fmt_int(s.comp.cycles),
           rsp::bench::fmt(s.scan.cycles_per_sec(), 0),
           rsp::bench::fmt(s.event.cycles_per_sec(), 0),
           rsp::bench::fmt(s.comp.cycles_per_sec(), 0),
           rsp::bench::fmt(s.speedup_vs_event(), 2) + "x",
           rsp::bench::fmt(s.replay_fraction(), 3)});
  }
  t.print();
  rsp::bench::note(identical
                       ? "cross-check: all three schedulers bit-identical "
                         "(cycles, fires, outputs)"
                       : "cross-check: FAILED — schedulers diverged");
  rsp::bench::note(
      "target: compiled >= 2x event-driven cycles/sec on >= 2 scenarios");

  const bool wrote = rsp::bench::write_json_checked(
      "BENCH_compiled.json", rsp::render_json(scenarios, args.smoke));
  if (wrote) rsp::bench::note("wrote BENCH_compiled.json");
  return identical && wrote ? 0 : 1;
}

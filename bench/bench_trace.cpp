// Observability overhead benchmark: tracing must be free when off.
// Measures cycles/sec of a streaming despreader workload in three
// modes:
//  - bare:   no tracer attached (the tier-1 fast path),
//  - paused: tracer attached but paused (pointer compare + flag load
//            per cycle boundary and per fire — the "tracing off" cost
//            an application pays for keeping a tracer wired in),
//  - on:     full counter collection every cycle boundary.
// The bare-vs-paused delta is the < 1% overhead claim guarded by
// ISSUE 3; bare and paused outputs are cross-checked word-for-word so
// the claim cannot be met by accidentally changing behaviour (and the
// "on" run must be bit-identical too — the tracer only reads).  Emits
// BENCH_trace.json and a Chrome/Perfetto timeline BENCH_trace_timeline.json.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <utility>
#include <vector>

#include "bench/report.hpp"
#include "src/common/rng.hpp"
#include "src/rake/maps.hpp"
#include "src/xpp/manager.hpp"
#include "src/xpp/trace.hpp"

namespace rsp {
namespace {

using Clock = std::chrono::steady_clock;

enum class Mode { kBare, kPaused, kOn };

struct Measurement {
  long long cycles = 0;
  long long fires = 0;
  double seconds = 0.0;
  std::vector<xpp::Word> checksum;
  xpp::PerfCounters counters;

  [[nodiscard]] double cycles_per_sec() const {
    return seconds > 0 ? static_cast<double>(cycles) / seconds : 0.0;
  }
};

std::vector<CplxI> random_chips(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<CplxI> out(n);
  for (auto& c : out) {
    c = {static_cast<int>(rng.below(2000)) - 1000,
         static_cast<int>(rng.below(2000)) - 1000};
  }
  return out;
}

Measurement run_stream(Mode mode, std::size_t n_chips) {
  const int sf = 16;
  const auto chips = random_chips(n_chips, 42);
  xpp::ConfigurationManager mgr;
  xpp::Tracer tracer;
  if (mode != Mode::kBare) mgr.sim().attach_trace(&tracer);
  if (mode == Mode::kPaused) tracer.pause();
  const auto finger = mgr.load(rake::maps::despreader_config(sf, 1));
  mgr.input(finger, "data").feed(rake::maps::pack_stream(chips));

  Measurement m;
  const long long c0 = mgr.sim().cycle();
  const long long f0 = mgr.sim().total_fires();
  const auto t0 = Clock::now();
  (void)mgr.sim().run_until_quiescent(static_cast<long long>(n_chips) * 8);
  m.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  m.cycles = mgr.sim().cycle() - c0;
  m.fires = mgr.sim().total_fires() - f0;
  m.checksum = mgr.output(finger, "out").take();
  if (mode == Mode::kOn) m.counters = tracer.snapshot();
  mgr.sim().attach_trace(nullptr);
  return m;
}

/// Best-of-@p reps with the three modes interleaved per repetition, so
/// slow machine drift (frequency scaling, a noisy neighbour) hits all
/// modes alike instead of biasing whichever ran last.
void measure_interleaved(std::size_t n_chips, int reps, Measurement& bare,
                         Measurement& paused, Measurement& on) {
  const auto keep = [](Measurement& best, Measurement m) {
    if (best.seconds == 0.0 || m.seconds < best.seconds) best = std::move(m);
  };
  for (int r = 0; r < reps; ++r) {
    keep(bare, run_stream(Mode::kBare, n_chips));
    keep(paused, run_stream(Mode::kPaused, n_chips));
    keep(on, run_stream(Mode::kOn, n_chips));
  }
}

bool write_json(const Measurement& bare, const Measurement& paused,
                const Measurement& on, double off_overhead_pct,
                double on_overhead_pct) {
  std::string j;
  bench::appendf(j, "{\n  \"bench\": \"bench_trace\",\n");
  bench::appendf(j, "  %s,\n", bench::host_context_json().c_str());
  bench::appendf(j, "  \"unit\": \"simulated_cycles_per_second\",\n");
  bench::appendf(j, "  \"workload\": \"despreader_sf16_stream\",\n");
  bench::appendf(j, "  \"cycles\": %lld,\n", bare.cycles);
  bench::appendf(j, "  \"bare_cps\": %s,\n",
                 bench::json_num(bare.cycles_per_sec(), 0).c_str());
  bench::appendf(j, "  \"attached_paused_cps\": %s,\n",
                 bench::json_num(paused.cycles_per_sec(), 0).c_str());
  bench::appendf(j, "  \"tracing_on_cps\": %s,\n",
                 bench::json_num(on.cycles_per_sec(), 0).c_str());
  bench::appendf(j, "  \"off_overhead_pct\": %s,\n",
                 bench::json_num(off_overhead_pct, 2).c_str());
  bench::appendf(j, "  \"off_overhead_target_pct\": 1.0,\n");
  bench::appendf(j, "  \"on_overhead_pct\": %s\n",
                 bench::json_num(on_overhead_pct, 2).c_str());
  bench::appendf(j, "}\n");
  return bench::write_json_checked("BENCH_trace.json", j);
}

}  // namespace
}  // namespace rsp

int main(int argc, char** argv) {
  const rsp::bench::Args args = rsp::bench::parse_args(argc, argv);
  rsp::bench::title("Tracing overhead: bare vs attached-paused vs tracing-on");

  const std::size_t kChips = args.smoke ? 4096 : 150000;
  rsp::Measurement bare, paused, on;
  rsp::measure_interleaved(kChips, args.smoke ? 1 : 5, bare, paused, on);

  // A paused (and even an active) tracer must not change behaviour.
  const bool identical =
      bare.checksum == paused.checksum && bare.cycles == paused.cycles &&
      bare.fires == paused.fires && bare.checksum == on.checksum &&
      bare.cycles == on.cycles && bare.fires == on.fires;
  if (!identical) {
    std::fprintf(stderr, "DIVERGENCE: traced run differs from bare run\n");
  }

  const auto overhead = [&](const rsp::Measurement& m) {
    return bare.cycles_per_sec() > 0
               ? (bare.cycles_per_sec() - m.cycles_per_sec()) /
                     bare.cycles_per_sec() * 100.0
               : 0.0;
  };
  const double off_overhead_pct = overhead(paused);
  const double on_overhead_pct = overhead(on);

  rsp::bench::Table t({"mode", "cycles", "fires", "cyc/s", "vs bare"});
  const auto rel = [&](const rsp::Measurement& m) {
    return rsp::bench::fmt(
               bare.cycles_per_sec() > 0
                   ? m.cycles_per_sec() / bare.cycles_per_sec() * 100.0
                   : 0.0,
               1) +
           "%";
  };
  for (const auto& [name, m] :
       {std::pair<const char*, const rsp::Measurement&>{"bare", bare},
        {"attached, paused", paused},
        {"tracing on", on}}) {
    t.row({name, rsp::bench::fmt_int(m.cycles), rsp::bench::fmt_int(m.fires),
           rsp::bench::fmt(m.cycles_per_sec(), 0), rel(m)});
  }
  t.print();
  rsp::bench::note(identical
                       ? "cross-check: paused and tracing-on runs bit-identical"
                         " to bare"
                       : "cross-check: FAILED — tracing changed behaviour");
  rsp::bench::note("target: tracing-off overhead < 1% (bare vs paused)");
  const bool wrote =
      rsp::write_json(bare, paused, on, off_overhead_pct, on_overhead_pct);
  if (wrote) rsp::bench::note("wrote BENCH_trace.json");

  {
    std::ofstream tl("BENCH_trace_timeline.json");
    rsp::xpp::ChromeTraceSink().write(on.counters, tl);
  }
  rsp::bench::note(
      "wrote BENCH_trace_timeline.json (open in chrome://tracing or "
      "https://ui.perfetto.dev)");
  return identical && wrote ? 0 : 1;
}

// Ablation: coarse/fine path-searcher integration lengths.
//
// The paper splits the path searcher into coarse and fine stages "with
// differing repetition intervals and accuracies".  This bench sweeps
// the coarse integration length and shows the detection/DSP-load
// trade, then the benefit of the fine refinement pass.
#include <algorithm>

#include "bench/report.hpp"
#include "src/common/rng.hpp"
#include "src/phy/channel.hpp"
#include "src/phy/umts_tx.hpp"
#include "src/rake/search.hpp"

namespace {

using namespace rsp;

struct Trial {
  std::vector<CplxF> rx;
  std::vector<int> true_delays;
};

Trial make_trial(std::uint64_t seed, double esn0_db) {
  Rng rng(seed);
  phy::BasestationConfig bs;
  bs.scrambling_code = 16;
  bs.cpich_gain = 0.4;
  phy::DpchConfig ch;
  ch.sf = 64;
  ch.code_index = 3;
  ch.gain = 0.8;
  ch.bits.resize(128);
  for (auto& b : ch.bits) b = rng.bit() ? 1 : 0;
  bs.channels.push_back(ch);
  phy::UmtsDownlinkTx tx(bs);
  phy::MultipathChannel mp(
      {{4, {0.8, 0.0}, 0.0}, {21, {0.0, 0.45}, 0.0}, {57, {0.3, -0.2}, 0.0}},
      3.84e6);
  Trial t;
  t.rx = mp.run(tx.generate(8192)[0], esn0_db, rng);
  t.true_delays = {4, 21, 57};
  return t;
}

int hits(const std::vector<rake::PathCandidate>& found,
         const std::vector<int>& truth) {
  int n = 0;
  for (const int d : truth) {
    for (const auto& c : found) {
      if (c.delay == d) {
        ++n;
        break;
      }
    }
  }
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  // Model-evaluation harness: already smoke-sized, so --smoke is
  // accepted (ctest -L perf) without changing the workload.
  (void)rsp::bench::parse_args(argc, argv);
  bench::title("Ablation — path searcher coarse/fine integration lengths");

  const int trials = 8;
  bench::Table t({"coarse chips", "fine chips", "paths found (of 24)",
                  "DSP Minstr / search"});
  for (const int coarse : {64, 128, 256, 512}) {
    for (const int fine : {coarse, 512}) {
      if (fine == coarse && coarse == 512) continue;  // row printed below
      int total_hits = 0;
      dsp::DspModel dsp;
      for (int k = 0; k < trials; ++k) {
        const auto trial = make_trial(100 + static_cast<std::uint64_t>(k),
                                      0.0 /* harsh Es/N0 */);
        rake::SearchParams p;
        p.coarse_chips = coarse;
        p.fine_chips = fine;
        rake::PathSearcher searcher(16, p);
        const auto found = searcher.search(trial.rx, 3, &dsp);
        total_hits += hits(found, trial.true_delays);
      }
      t.row({bench::fmt_int(coarse), bench::fmt_int(fine),
             bench::fmt_int(total_hits),
             bench::fmt(static_cast<double>(dsp.total_instructions()) /
                            trials / 1e6, 2)});
    }
  }
  t.print();

  bench::note(
      "\nShape check: short coarse integration alone misses weak paths at\n"
      "low Es/N0; adding the long fine pass recovers them at a fraction\n"
      "of the cost of running the long correlation everywhere — the\n"
      "reason the paper splits the searcher in two.");
  return 0;
}

// Ablation: coarse-grained packed-complex ALUs vs. word-granular
// scalar decomposition.
//
// The paper's central design choice is coarse granularity ("an
// approach based on coarse-grained processing elements such as ALUs,
// multipliers and RAMs ... provides a high amount of processing power
// in a cost-efficient implementation").  This bench quantifies it: the
// same complex multiplication stream implemented (a) as one
// packed-complex ALU and (b) as the 15-PAE scalar subgraph.
#include "bench/report.hpp"
#include "src/common/rng.hpp"
#include "src/xpp/macros.hpp"
#include "src/xpp/runner.hpp"

int main(int argc, char** argv) {
  // Model-evaluation harness: already smoke-sized, so --smoke is
  // accepted (ctest -L perf) without changing the workload.
  (void)rsp::bench::parse_args(argc, argv);
  using namespace rsp;
  using namespace rsp::xpp;
  bench::title("Ablation — coarse-grained vs word-granular complex multiply");

  Rng rng(5);
  const std::size_t n = 2048;
  std::vector<Word> a;
  std::vector<Word> bb;
  for (std::size_t i = 0; i < n; ++i) {
    a.push_back(pack_cplx({static_cast<int>(rng.below(2048)) - 1024,
                           static_cast<int>(rng.below(2048)) - 1024}));
    bb.push_back(pack_cplx({static_cast<int>(rng.below(2048)) - 1024,
                            static_cast<int>(rng.below(2048)) - 1024}));
  }

  // (a) packed-complex ALU.
  RunResult packed;
  std::vector<Word> packed_out;
  {
    ConfigBuilder b("packed");
    const auto ia = b.input("a");
    const auto ib = b.input("b");
    const auto mul = b.alu_shift("cmul", Opcode::kCMulShr, 10);
    const auto out = b.output("out");
    b.connect(ia.out(0), mul.in(0));
    b.connect(ib.out(0), mul.in(1));
    b.connect(mul.out(0), out.in(0));
    ConfigurationManager mgr;
    auto r = run_config(mgr, b.build(), {{"a", a}, {"b", bb}}, {{"out", n}});
    packed_out = r.outputs.at("out");
    packed = std::move(r);
  }

  // (b) scalar decomposition.
  RunResult scalar;
  std::vector<Word> scalar_out;
  {
    ConfigBuilder b("scalar");
    const auto ia = b.input("a");
    const auto ib = b.input("b");
    const PortRef prod =
        macros::scalar_cmul(b, "cm", 10, ia.out(0), ib.out(0));
    const auto out = b.output("out");
    b.connect(prod, out.in(0));
    ConfigurationManager mgr;
    auto r = run_config(mgr, b.build(), {{"a", a}, {"b", bb}}, {{"out", n}});
    scalar_out = r.outputs.at("out");
    scalar = std::move(r);
  }

  bench::Table t({"implementation", "ALU-PAEs", "routing segs",
                  "load cycles", "exec cycles", "cycles/value"});
  t.row({"packed-complex ALU (coarse)", bench::fmt_int(packed.info.alu_cells),
         bench::fmt_int(packed.info.routing_segments),
         bench::fmt_int(packed.load_cycles), bench::fmt_int(packed.cycles),
         bench::fmt(static_cast<double>(packed.cycles) / n, 3)});
  t.row({"scalar PAE subgraph (fine)", bench::fmt_int(scalar.info.alu_cells),
         bench::fmt_int(scalar.info.routing_segments),
         bench::fmt_int(scalar.load_cycles), bench::fmt_int(scalar.cycles),
         bench::fmt(static_cast<double>(scalar.cycles) / n, 3)});
  t.print();

  bench::Table s({"metric", "value"});
  s.row({"results identical", packed_out == scalar_out ? "yes" : "NO"});
  s.row({"PAE cost ratio (fine/coarse)",
         bench::fmt(static_cast<double>(scalar.info.alu_cells) /
                        static_cast<double>(packed.info.alu_cells), 1)});
  s.row({"configuration cost ratio",
         bench::fmt(static_cast<double>(scalar.load_cycles) /
                        static_cast<double>(packed.load_cycles), 1)});
  s.print();

  bench::note(
      "\nShape check: the fine-grained decomposition needs ~15x the PAEs\n"
      "and several times the configuration bandwidth for the same\n"
      "throughput — the paper's case for coarse-grained elements in\n"
      "MAC-heavy SDR workloads.");
  return 0;
}

// Microbenchmarks (google-benchmark): golden signal-processing kernels
// — host-side cost of the bit-true chains used throughout the
// experiments.
#include <benchmark/benchmark.h>

#include <string_view>
#include <vector>

#include "src/common/rng.hpp"
#include "src/dedhw/convcode.hpp"
#include "src/dedhw/umts_scrambler.hpp"
#include "src/dedhw/viterbi.hpp"
#include "src/phy/fft.hpp"
#include "src/rake/golden.hpp"

namespace {

using namespace rsp;

void BM_ScramblerChips(benchmark::State& state) {
  dedhw::UmtsScrambler scr(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scr.next2());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScramblerChips);

void BM_Fft64Fixed(benchmark::State& state) {
  Rng rng(1);
  std::array<CplxI, 64> in{};
  for (auto& c : in) {
    c = {static_cast<int>(rng.below(1023)) - 511,
         static_cast<int>(rng.below(1023)) - 511};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(phy::fft64_fixed(in));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fft64Fixed);

void BM_GoldenDespread(benchmark::State& state) {
  const int sf = static_cast<int>(state.range(0));
  Rng rng(2);
  std::vector<CplxI> chips(static_cast<std::size_t>(sf) * 32);
  for (auto& c : chips) {
    c = {static_cast<int>(rng.below(2048)) - 1024,
         static_cast<int>(rng.below(2048)) - 1024};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rake::despread(chips, sf, 1));
  }
  state.SetItemsProcessed(static_cast<long long>(state.iterations()) *
                          static_cast<long long>(chips.size()));
}
BENCHMARK(BM_GoldenDespread)->Arg(4)->Arg(64)->Arg(512);

void BM_ViterbiDecode(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::uint8_t> bits(static_cast<std::size_t>(state.range(0)));
  for (auto& b : bits) b = rng.bit() ? 1 : 0;
  const auto coded = dedhw::conv_encode(bits, dedhw::CodeRate::kR12, true);
  std::vector<std::int32_t> soft(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) soft[i] = coded[i] ? 64 : -64;
  dedhw::ViterbiDecoder dec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec.decode(soft, bits.size(), true));
  }
  state.SetItemsProcessed(static_cast<long long>(state.iterations()) *
                          static_cast<long long>(bits.size()));
}
BENCHMARK(BM_ViterbiDecode)->Arg(240)->Arg(960);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the whole bench/ directory
// shares one flag vocabulary, so this binary also accepts --smoke
// (used by `ctest -L perf`) and translates it into a minimal
// google-benchmark run before handing the remaining flags through.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  static char min_time[] = "--benchmark_min_time=0.01";
  for (auto it = args.begin(); it != args.end(); ++it) {
    if (std::string_view(*it) == "--smoke") {
      *it = min_time;
      break;
    }
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Figure 10: configuration mapping on the reconfigurable hardware for
// the OFDM decoder — configuration 1 (down-sampling/FFT/descrambler
// path) stays resident, configuration 2a (preamble detection) is
// loaded for acquisition and removed after execution, freeing its
// resources for configuration 2b (demodulation).
#include <algorithm>

#include "bench/report.hpp"
#include "src/common/rng.hpp"
#include "src/ofdm/maps.hpp"
#include "src/xpp/manager.hpp"

int main(int argc, char** argv) {
  // Model-evaluation harness: already smoke-sized, so --smoke is
  // accepted (ctest -L perf) without changing the workload.
  (void)rsp::bench::parse_args(argc, argv);
  using namespace rsp;
  bench::title("Figure 10 — runtime configuration schedule, OFDM decoder");

  xpp::ConfigurationManager mgr;
  const auto& rm = mgr.resources();

  bench::Table t({"event", "cycle", "config cycles", "ALU in use",
                  "RAM in use", "free ALU"});
  const auto snap = [&](const std::string& ev) {
    t.row({ev, bench::fmt_int(mgr.sim().cycle()),
           bench::fmt_int(mgr.total_config_cycles()),
           bench::fmt_int(rm.used_alu_cells()),
           bench::fmt_int(rm.used_ram_cells()),
           bench::fmt_int(rm.free_alu_cells())});
  };

  snap("empty array");

  // Config 1: resident datapath — down-sampling + FFT64 + descrambler
  // ("Modules contained in Configuration 1 are required to run
  // continuously and thus remain in the hardware").
  const auto id1 = mgr.load(ofdm::maps::downsample2_config());
  const auto id1b = mgr.load(ofdm::maps::fft64_stage_config(0));
  const auto id1c = mgr.load(ofdm::maps::wlan_descrambler_config(0x5D));
  snap("load config 1 (downsample + FFT64 + descrambler)");

  // Config 2a: preamble detection correlator.
  const auto id2a = mgr.load(ofdm::maps::preamble_config(true));
  snap("load config 2a (preamble detection)");

  // Run the acquisition phase: stream samples through both configs.
  Rng rng(1);
  std::vector<xpp::Word> raw;
  for (int i = 0; i < 640; ++i) {
    raw.push_back(pack_iq(static_cast<int>(rng.below(800)) - 400,
                          static_cast<int>(rng.below(800)) - 400));
  }
  mgr.input(id1, "data").feed(raw);
  mgr.input(id2a, "data").feed(raw);
  mgr.sim().run_until_quiescent(100000);
  snap("acquisition phase executed");

  // "The resources of the preamble detection (Configuration 2a) can be
  //  removed after execution."
  const int alu_with_2a = rm.used_alu_cells();
  mgr.release(id2a);
  snap("release config 2a");

  // "The freed resources are then available for the demodulation tasks
  //  contained in Configuration 2b."
  std::vector<CplxI> h(48, CplxI{700, -120});
  const auto id2b = mgr.load(ofdm::maps::demod_config(h, 10));
  snap("load config 2b (demodulation)");
  const int alu_with_2b = rm.used_alu_cells();

  // Demodulate a symbol through 2b while config 1 keeps running.
  std::vector<xpp::Word> bins;
  for (int i = 0; i < 48; ++i) {
    bins.push_back(pack_iq(static_cast<int>(rng.below(1000)) - 500,
                           static_cast<int>(rng.below(1000)) - 500));
  }
  mgr.input(id2b, "data").feed(bins);
  mgr.input(id1, "data").feed(raw);
  mgr.sim().run_until_quiescent(100000);
  snap("demodulation phase executed");

  mgr.release(id2b);
  mgr.release(id1c);
  mgr.release(id1b);
  mgr.release(id1);
  snap("teardown");
  t.print();

  const auto cfg2a = ofdm::maps::preamble_config(true);
  const auto cfg2b = ofdm::maps::demod_config(h, 10);
  bench::Table c({"metric", "value"});
  c.row({"config 2a load cost (cycles)",
         bench::fmt_int(xpp::config_load_cycles(cfg2a))});
  c.row({"config 2b load cost (cycles)",
         bench::fmt_int(xpp::config_load_cycles(cfg2b))});
  c.row({"ALU cells during 2a", bench::fmt_int(alu_with_2a)});
  c.row({"ALU cells during 2b", bench::fmt_int(alu_with_2b)});
  c.row({"cells freed by the 2a -> 2b swap",
         bench::fmt_int(alu_with_2a - alu_with_2b)});
  const auto cfg1 = ofdm::maps::downsample2_config();
  const auto cfg1b = ofdm::maps::fft64_stage_config(0);
  const auto cfg1c = ofdm::maps::wlan_descrambler_config(0x5D);
  c.row({"ALU cells, static design (1 + 2a + 2b resident)",
         bench::fmt_int(cfg1.alu_demand() + cfg1b.alu_demand() +
                        cfg1c.alu_demand() + cfg2a.alu_demand() +
                        cfg2b.alu_demand())});
  c.row({"ALU cells, reconfigured design (peak)",
         bench::fmt_int(std::max(alu_with_2a, alu_with_2b))});
  c.print();

  bench::note(
      "\nShape check: the acquisition datapath is removed after the\n"
      "preamble is found and its PAEs are re-used by the demodulator,\n"
      "while configuration 1 keeps streaming throughout — run-time\n"
      "partial reconfiguration is what lets one small array carry the\n"
      "whole decoder.");
  return 0;
}

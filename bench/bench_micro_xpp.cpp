// Microbenchmarks (google-benchmark): simulator and configuration
// manager performance — how fast the host simulates array cycles,
// loads/releases configurations and streams the Figure 5/6 datapaths.
#include <benchmark/benchmark.h>

#include <string_view>
#include <vector>

#include "src/common/rng.hpp"
#include "src/dedhw/umts_scrambler.hpp"
#include "src/rake/maps.hpp"
#include "src/xpp/builder.hpp"
#include "src/xpp/nml.hpp"
#include "src/xpp/manager.hpp"

namespace {

using namespace rsp;
using namespace rsp::xpp;

Configuration chain_config(int stages) {
  ConfigBuilder b("chain");
  const auto in = b.input("in");
  PortRef prev = in.out(0);
  for (int i = 0; i < stages; ++i) {
    const auto a = b.alu("a" + std::to_string(i), Opcode::kAdd);
    b.tie(a, 1, 1);
    b.connect(prev, a.in(0));
    prev = a.out(0);
  }
  const auto out = b.output("out");
  b.connect(prev, out.in(0));
  return b.build();
}

void BM_SimulatorStep(benchmark::State& state) {
  const int stages = static_cast<int>(state.range(0));
  ConfigurationManager mgr;
  const auto id = mgr.load(chain_config(stages));
  auto& in = mgr.input(id, "in");
  long long fed = 0;
  for (auto _ : state) {
    if (in.pending() < 4) {
      in.feed(std::vector<Word>(1024, 1));
      fed += 1024;
    }
    mgr.sim().step();
  }
  state.counters["objects"] = static_cast<double>(stages + 2);
  state.counters["fires/s"] = benchmark::Counter(
      static_cast<double>(mgr.sim().total_fires()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorStep)->Arg(8)->Arg(32)->Arg(62);

void BM_ConfigLoadRelease(benchmark::State& state) {
  const auto cfg = rake::maps::despreader_config(64, 3);
  ConfigurationManager mgr;
  for (auto _ : state) {
    const auto id = mgr.load(cfg);
    mgr.release(id);
  }
}
BENCHMARK(BM_ConfigLoadRelease);

void BM_DescramblerStream(benchmark::State& state) {
  Rng rng(1);
  const std::size_t n = 1024;
  std::vector<CplxI> chips(n);
  for (auto& c : chips) {
    c = {static_cast<int>(rng.below(2048)) - 1024,
         static_cast<int>(rng.below(2048)) - 1024};
  }
  dedhw::UmtsScrambler scr(16);
  std::vector<std::uint8_t> code2(n);
  for (auto& c : code2) c = scr.next2();
  for (auto _ : state) {
    ConfigurationManager mgr;
    benchmark::DoNotOptimize(rake::maps::run_descrambler(mgr, chips, code2));
  }
  state.SetItemsProcessed(static_cast<long long>(state.iterations()) *
                          static_cast<long long>(n));
}
BENCHMARK(BM_DescramblerStream);

void BM_NmlRoundTrip(benchmark::State& state) {
  const auto cfg = rake::maps::despreader_config(256, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(parse_nml(to_nml(cfg)));
  }
}
BENCHMARK(BM_NmlRoundTrip);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the whole bench/ directory
// shares one flag vocabulary, so this binary also accepts --smoke
// (used by `ctest -L perf`) and translates it into a minimal
// google-benchmark run before handing the remaining flags through.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  static char min_time[] = "--benchmark_min_time=0.01";
  for (auto it = args.begin(); it != args.end(); ++it) {
    if (std::string_view(*it) == "--smoke") {
      *it = min_time;
      break;
    }
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

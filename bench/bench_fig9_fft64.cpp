// Figure 9: the FFT64 radix-4 kernel mapped onto complex-arithmetic
// ALUs with preloaded address/twiddle lookup FIFOs.
//
// Measures: per-stage resources and cycles on the simulated array,
// bit-exactness against the golden fixed-point model, the paper's
// precision claim (10-bit input, 2-bit scaling per stage -> ~4-bit
// result precision) and the real-time budget at the 802.11a symbol
// rate.
#include <cmath>

#include "bench/report.hpp"
#include "src/common/dbmath.hpp"
#include "src/common/rng.hpp"
#include "src/ofdm/maps.hpp"
#include "src/phy/fft.hpp"

int main(int argc, char** argv) {
  // Model-evaluation harness: already smoke-sized, so --smoke is
  // accepted (ctest -L perf) without changing the workload.
  (void)rsp::bench::parse_args(argc, argv);
  using namespace rsp;
  bench::title("Figure 9 — FFT64 radix-4 kernel on the array");

  Rng rng(9);
  std::array<CplxI, 64> in{};
  std::vector<CplxF> xf(64);
  for (int n = 0; n < 64; ++n) {
    const CplxI q{static_cast<int>(rng.below(1023)) - 511,
                  static_cast<int>(rng.below(1023)) - 511};
    in[static_cast<std::size_t>(n)] = q;
    xf[static_cast<std::size_t>(n)] = {static_cast<double>(q.re),
                                       static_cast<double>(q.im)};
  }

  xpp::ConfigurationManager mgr;
  std::vector<xpp::RunResult> stages;
  const auto mapped = ofdm::maps::run_fft64(mgr, in, &stages);
  const auto golden = phy::fft64_fixed(in);
  const bool exact = mapped == golden;

  bench::Table t({"stage", "ALU-PAEs", "RAM-PAEs", "load cycles",
                  "execution cycles"});
  long long total_cycles = 0;
  for (std::size_t s = 0; s < stages.size(); ++s) {
    t.row({bench::fmt_int(static_cast<long long>(s)),
           bench::fmt_int(stages[s].info.alu_cells),
           bench::fmt_int(stages[s].info.ram_cells),
           bench::fmt_int(stages[s].load_cycles),
           bench::fmt_int(stages[s].cycles)});
    total_cycles += stages[s].cycles;
  }
  t.print();

  // Precision vs. the float reference.
  phy::fft(xf, false);
  double sig = 0.0;
  double err = 0.0;
  for (int k = 0; k < 64; ++k) {
    const CplxF ref = xf[static_cast<std::size_t>(k)] / 64.0;
    const CplxF got{static_cast<double>(mapped[static_cast<std::size_t>(k)].re),
                    static_cast<double>(mapped[static_cast<std::size_t>(k)].im)};
    sig += std::norm(ref);
    err += std::norm(ref - got);
  }
  const double sqnr = lin_to_db(sig / err);

  bench::Table s({"metric", "value"});
  s.row({"mapped == golden fixed-point", exact ? "yes (bit-exact)" : "NO"});
  s.row({"total execution cycles / transform", bench::fmt_int(total_cycles)});
  s.row({"input precision", "10 bit (paper)"});
  s.row({"per-stage scaling", "2-bit right shift (paper)"});
  s.row({"SQNR vs float FFT (dB)", bench::fmt(sqnr, 1)});
  s.row({"effective result precision (bits)", bench::fmt(sqnr / 6.02, 1)});
  s.print();

  // Real-time budget: one transform per 4 us OFDM symbol.  The harness
  // serializes load/compute/drain per stage pass with explicit
  // barriers; a resident streaming kernel iterates the radix-4 module
  // at one branch value per cycle, i.e. 3 x 64 cycles + pipeline fill
  // per transform ("delivering a result value with every clock
  // cycle", paper §3.2).
  const long long streaming_cycles = 3 * 64 + 16;
  bench::Table rt({"clock (MHz)", "mode", "transforms/s",
                   "needed (802.11a)", "margin"});
  for (const double clk : {20.0e6, 69.12e6, 100.0e6}) {
    const double measured = clk / static_cast<double>(total_cycles);
    const double streaming = clk / static_cast<double>(streaming_cycles);
    rt.row({bench::fmt(clk / 1e6, 2), "phase-barrier harness (measured)",
            bench::fmt(measured, 0), "250000",
            bench::fmt(measured / 250000.0, 2)});
    rt.row({bench::fmt(clk / 1e6, 2), "resident streaming kernel",
            bench::fmt(streaming, 0), "250000",
            bench::fmt(streaming / 250000.0, 2)});
  }
  rt.print();

  bench::note(
      "\nShape check: ~22 ALU-PAEs + 7 RAM-PAEs realize the radix-4\n"
      "kernel bit-exactly; result precision lands at the paper's few-bit\n"
      "claim; and the resident streaming kernel (one value per clock)\n"
      "meets the 250 ksymbol/s 802.11a budget already at ~52 MHz.");
  return 0;
}

// Terminal-fleet serving benchmark (src/fleet): aggregate frame
// throughput of N same-configuration UMTS descrambler sessions under
//  - per-instance scalar kCompiled (every terminal detects and
//    compiles its own steady state — the PR-5 serving model), and
//  - FleetManager admission against a warmed BatchProgramCache (every
//    session cold-binds the published epoch program at admit time,
//    skips steady-state detection entirely, and replays in lockstep
//    SoA batches),
// sweeping the session count upward until aggregate throughput stops
// scaling (per-session throughput degrades past the knee threshold).
//
// A frame is a fixed quantum of kFrameChips chips fed at a boundary
// and simulated for exactly kFrameChips cycles; both serving models
// drive the identical boundary script, so every session's output words
// must be bit-identical to the per-instance baseline — the harness
// refuses to report a number otherwise.  A separate section measures
// admission latency and mid-session reconfigure latency (descrambler
// <-> despreader round trips against a warmed cache, p99 quoted).
// Emits BENCH_fleet.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/report.hpp"
#include "src/common/rng.hpp"
#include "src/dedhw/umts_scrambler.hpp"
#include "src/fleet/fleet.hpp"
#include "src/rake/maps.hpp"
#include "src/xpp/builder.hpp"
#include "src/xpp/manager.hpp"

namespace rsp {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kFrameChips = 256;  ///< chips (and cycles) per frame
constexpr long long kDrainCycles = 256;   ///< pipeline drain after last frame

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<CplxI> random_chips(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<CplxI> out(n);
  for (auto& c : out) {
    c = {static_cast<int>(rng.below(2000)) - 1000,
         static_cast<int>(rng.below(2000)) - 1000};
  }
  return out;
}

/// Per-session boundary script: one data+code feed per frame,
/// pre-generated so the timed drives measure simulation only.
struct Script {
  std::vector<std::vector<xpp::Word>> data;  ///< [frame]
  std::vector<std::vector<xpp::Word>> code;
};

Script make_script(std::size_t session, std::size_t frames) {
  Script s;
  s.data.reserve(frames);
  s.code.reserve(frames);
  dedhw::UmtsScrambler scr(16);
  for (std::size_t f = 0; f < frames; ++f) {
    s.data.push_back(rake::maps::pack_stream(
        random_chips(kFrameChips, 13 + session * 1000 + f)));
    std::vector<xpp::Word> code(kFrameChips);
    for (auto& c : code) c = scr.next2() & 3;
    s.code.push_back(std::move(code));
  }
  return s;
}

/// Per-instance scalar kCompiled baseline: each terminal is its own
/// cold ConfigurationManager (no shared cache) and runs its whole
/// script alone — N independent detections, N compiles.
double drive_baseline(const xpp::Configuration& cfg,
                      const std::vector<Script>& scripts,
                      std::vector<std::vector<xpp::Word>>* outputs) {
  const auto t0 = Clock::now();
  if (outputs != nullptr) outputs->clear();
  for (const Script& s : scripts) {
    xpp::ConfigurationManager mgr({}, xpp::SchedulerKind::kCompiled);
    const xpp::ConfigId id = mgr.load(cfg);
    for (std::size_t f = 0; f < s.data.size(); ++f) {
      mgr.input(id, "data").feed(s.data[f]);
      mgr.input(id, "code").feed(s.code[f]);
      mgr.sim().run(static_cast<long long>(kFrameChips));
    }
    mgr.sim().run(kDrainCycles);
    if (outputs != nullptr) outputs->push_back(mgr.output(id, "out").take());
  }
  return seconds_since(t0);
}

struct FleetRun {
  double admit_seconds = 0.0;  ///< total wall time of the admit wave
  double drive_seconds = 0.0;
  double admit_p99_us = 0.0;
  long long hits = 0;  ///< admissions served from the cache
  fleet::FleetStats stats;
  std::vector<std::vector<xpp::Word>> outputs;
};

double p99_us(std::vector<double>& samples_us) {
  if (samples_us.empty()) return 0.0;
  std::sort(samples_us.begin(), samples_us.end());
  const std::size_t idx =
      (samples_us.size() * 99 + 99) / 100 == 0
          ? 0
          : std::min(samples_us.size() - 1, (samples_us.size() * 99) / 100);
  return samples_us[idx];
}

/// Fleet drive against @p cache, which the caller has already warmed
/// (one terminal detected, compiled and published) — every admission
/// here must be a cache hit that never runs detection.
FleetRun drive_fleet(const xpp::Configuration& cfg,
                     const std::vector<Script>& scripts,
                     xpp::BatchProgramCache* cache) {
  FleetRun run;
  fleet::FleetOptions opts;
  opts.batch_width = xpp::simd::kMaxBatchWidth;
  opts.threads = 1;
  opts.cache = cache;
  fleet::FleetManager mgr(opts);

  std::vector<fleet::SessionId> ids;
  ids.reserve(scripts.size());
  std::vector<double> admit_us;
  admit_us.reserve(scripts.size());
  const auto ta = Clock::now();
  for (std::size_t i = 0; i < scripts.size(); ++i) {
    const auto t0 = Clock::now();
    ids.push_back(mgr.admit(cfg));
    admit_us.push_back(seconds_since(t0) * 1e6);
    if (mgr.cache_hit(ids.back())) ++run.hits;
  }
  run.admit_seconds = seconds_since(ta);
  run.admit_p99_us = p99_us(admit_us);

  const std::size_t frames = scripts[0].data.size();
  const auto td = Clock::now();
  for (std::size_t f = 0; f < frames; ++f) {
    for (std::size_t i = 0; i < scripts.size(); ++i) {
      mgr.input(ids[i], "data").feed(scripts[i].data[f]);
      mgr.input(ids[i], "code").feed(scripts[i].code[f]);
    }
    mgr.run_cycles(static_cast<long long>(kFrameChips));
  }
  mgr.run_cycles(kDrainCycles);
  run.drive_seconds = seconds_since(td);

  run.outputs.reserve(ids.size());
  for (const fleet::SessionId id : ids) {
    run.outputs.push_back(mgr.output(id, "out").take());
  }
  run.stats = mgr.stats();
  return run;
}

/// Publish the configuration's steady-state program into @p cache by
/// running one throwaway terminal through a short stream.
void warm_cache(const xpp::Configuration& cfg, bool with_code,
                xpp::BatchProgramCache* cache) {
  fleet::FleetOptions opts;
  opts.cache = cache;
  fleet::FleetManager mgr(opts);
  const fleet::SessionId id = mgr.admit(cfg);
  const auto chips =
      rake::maps::pack_stream(random_chips(4 * kFrameChips, 999));
  mgr.input(id, "data").feed(chips);
  if (with_code) {
    dedhw::UmtsScrambler scr(16);
    std::vector<xpp::Word> code(4 * kFrameChips);
    for (auto& c : code) c = scr.next2() & 3;
    mgr.input(id, "code").feed(code);
  }
  mgr.run_cycles(4 * kFrameChips + kDrainCycles);
}

struct Row {
  std::size_t sessions = 0;
  double sessions_per_core = 0.0;
  long long frames = 0;            ///< aggregate frames served
  double baseline_fps = 0.0;       ///< frames/s, per-instance kCompiled
  double fleet_fps = 0.0;          ///< frames/s, fleet serving
  double admit_p99_us = 0.0;
  long long hits = 0;
  fleet::FleetStats stats;

  [[nodiscard]] double speedup() const {
    return baseline_fps > 0 ? fleet_fps / baseline_fps : 0.0;
  }
};

bool identical(const std::vector<std::vector<xpp::Word>>& fleet_out,
               const std::vector<std::vector<xpp::Word>>& base_out) {
  if (fleet_out.size() != base_out.size()) return false;
  for (std::size_t i = 0; i < fleet_out.size(); ++i) {
    if (fleet_out[i].empty() || fleet_out[i] != base_out[i]) {
      std::fprintf(stderr,
                   "FAIL session %zu: fleet %zu words vs baseline %zu "
                   "(or content mismatch)\n",
                   i, fleet_out[i].size(), base_out[i].size());
      return false;
    }
  }
  return true;
}

Row run_point(const xpp::Configuration& cfg, std::size_t sessions,
              std::size_t frames, int reps) {
  std::vector<Script> scripts;
  scripts.reserve(sessions);
  for (std::size_t i = 0; i < sessions; ++i) {
    scripts.push_back(make_script(i, frames));
  }

  Row row;
  row.sessions = sessions;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  row.sessions_per_core = static_cast<double>(sessions) / hw;
  row.frames = static_cast<long long>(sessions * frames);

  double base_best = 0.0;
  std::vector<std::vector<xpp::Word>> base_out;
  for (int r = 0; r < reps; ++r) {
    const double t = drive_baseline(cfg, scripts, r == 0 ? &base_out : nullptr);
    if (r == 0 || t < base_best) base_best = t;
  }

  double fleet_best = 0.0;
  FleetRun first;
  for (int r = 0; r < reps; ++r) {
    // A fresh cache per rep keeps the warm-up cost honest; admission
    // timing always sees exactly one published program.
    xpp::BatchProgramCache cache;
    warm_cache(cfg, /*with_code=*/true, &cache);
    FleetRun run = drive_fleet(cfg, scripts, &cache);
    const double t = run.drive_seconds;
    if (r == 0) first = std::move(run);
    if (r == 0 || t < fleet_best) fleet_best = t;
  }

  if (!identical(first.outputs, base_out)) std::exit(1);
  if (first.hits != static_cast<long long>(sessions)) {
    std::fprintf(stderr, "FAIL: %lld/%zu admissions hit the warmed cache\n",
                 first.hits, sessions);
    std::exit(1);
  }
  if (first.stats.compiles != 0) {
    std::fprintf(stderr,
                 "FAIL: admitted sessions ran steady-state detection "
                 "(%lld compiles)\n",
                 first.stats.compiles);
    std::exit(1);
  }

  row.baseline_fps =
      base_best > 0 ? static_cast<double>(row.frames) / base_best : 0.0;
  row.fleet_fps =
      fleet_best > 0 ? static_cast<double>(row.frames) / fleet_best : 0.0;
  row.admit_p99_us = first.admit_p99_us;
  row.hits = first.hits;
  row.stats = first.stats;
  return row;
}

/// Mid-session reconfigure latency: descrambler <-> despreader round
/// trips on a live session, both configurations already published, so
/// every re-admission is a cache hit.  Returns p99 in microseconds.
struct ReconfigPoint {
  std::size_t sessions = 0;
  int swaps = 0;
  double p99_us = 0.0;
  double mean_us = 0.0;
};

ReconfigPoint measure_reconfigure(std::size_t sessions, int swaps) {
  const auto descr = rake::maps::descrambler_config();
  const auto despr = rake::maps::despreader_config(16, 1);
  xpp::BatchProgramCache cache;
  warm_cache(descr, /*with_code=*/true, &cache);
  warm_cache(despr, /*with_code=*/false, &cache);

  fleet::FleetOptions opts;
  opts.cache = &cache;
  fleet::FleetManager mgr(opts);
  std::vector<fleet::SessionId> ids;
  for (std::size_t i = 0; i < sessions; ++i) ids.push_back(mgr.admit(descr));

  std::vector<double> us;
  us.reserve(static_cast<std::size_t>(swaps) * 2);
  for (int s = 0; s < swaps; ++s) {
    const fleet::SessionId id = ids[static_cast<std::size_t>(s) % sessions];
    auto t0 = Clock::now();
    mgr.reconfigure(id, despr);
    us.push_back(seconds_since(t0) * 1e6);
    t0 = Clock::now();
    mgr.reconfigure(id, descr);
    us.push_back(seconds_since(t0) * 1e6);
  }
  ReconfigPoint p;
  p.sessions = sessions;
  p.swaps = swaps * 2;
  double sum = 0.0;
  for (const double v : us) sum += v;
  p.mean_us = us.empty() ? 0.0 : sum / static_cast<double>(us.size());
  p.p99_us = p99_us(us);
  return p;
}

std::string render_json(const std::vector<Row>& rows, const ReconfigPoint& rc,
                        bool smoke) {
  std::string j;
  bench::appendf(j, "{\n  \"bench\": \"bench_fleet\",\n");
  bench::appendf(j, "  %s,\n", bench::host_context_json().c_str());
  bench::appendf(j, "  \"unit\": \"frames_per_second\",\n");
  bench::appendf(j, "  \"frame_chips\": %zu,\n", kFrameChips);
  bench::appendf(j, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  bench::appendf(j, "  \"bit_identical_sessions\": true,\n");
  bench::appendf(j, "  \"sweep\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    bench::appendf(
        j,
        "    {\"sessions\": %zu, \"sessions_per_core\": %s, "
        "\"frames\": %lld,\n"
        "     \"baseline_fps\": %s, \"fleet_fps\": %s, \"speedup\": %s,\n"
        "     \"cache_hit_admits\": %lld, \"admit_p99_us\": %s,\n"
        "     \"fleet_adopts\": %lld, \"fleet_arms\": %lld, "
        "\"compiles\": %lld,\n"
        "     \"batched_cycles\": %lld, \"scalar_cycles\": %lld, "
        "\"guard_exits\": %lld}%s\n",
        r.sessions, bench::json_num(r.sessions_per_core, 2).c_str(), r.frames,
        bench::json_num(r.baseline_fps, 1).c_str(),
        bench::json_num(r.fleet_fps, 1).c_str(),
        bench::json_num(r.speedup(), 3).c_str(), r.hits,
        bench::json_num(r.admit_p99_us, 1).c_str(), r.stats.fleet_adopts,
        r.stats.fleet_arms, r.stats.compiles, r.stats.batched_cycles,
        r.stats.scalar_cycles, r.stats.guard_exits,
        i + 1 < rows.size() ? "," : "");
  }
  bench::appendf(j, "  ],\n");
  bench::appendf(j,
                 "  \"reconfigure\": {\"sessions\": %zu, \"swaps\": %d, "
                 "\"p99_us\": %s, \"mean_us\": %s}\n",
                 rc.sessions, rc.swaps, bench::json_num(rc.p99_us, 1).c_str(),
                 bench::json_num(rc.mean_us, 1).c_str());
  bench::appendf(j, "}\n");
  return j;
}

}  // namespace
}  // namespace rsp

int main(int argc, char** argv) {
  const rsp::bench::Args args = rsp::bench::parse_args(argc, argv);
  rsp::bench::title(
      "Terminal-fleet serving: compile-once/replay-many admission vs "
      "per-instance compiled terminals");
  rsp::bench::note(std::string("SIMD ISA: ") + rsp::xpp::simd::isa_name() +
                   ", batch width " +
                   std::to_string(rsp::xpp::simd::kMaxBatchWidth));

  const int reps = args.smoke ? 1 : 2;
  const std::size_t frames = args.smoke ? 4 : 16;
  const std::vector<std::size_t> sweep =
      args.smoke ? std::vector<std::size_t>{4, 8}
                 : std::vector<std::size_t>{8, 16, 32, 64, 128, 256};

  const auto cfg = rsp::rake::maps::descrambler_config();
  std::vector<rsp::Row> rows;
  double best_aggregate = 0.0;
  for (const std::size_t n : sweep) {
    rows.push_back(rsp::run_point(cfg, n, frames, reps));
    // Stop the sweep once serving breaks: aggregate throughput has
    // fallen well off its peak (per-session rate dividing down as the
    // population grows is expected and not a knee — the core is
    // time-shared; what must NOT happen is the aggregate collapsing
    // under working-set or lane-table pressure).
    best_aggregate = std::max(best_aggregate, rows.back().fleet_fps);
    if (rows.back().fleet_fps < 0.8 * best_aggregate) {
      rsp::bench::note("sweep stopped: aggregate throughput knee at " +
                       std::to_string(n) + " sessions");
      break;
    }
  }

  const rsp::ReconfigPoint rc =
      rsp::measure_reconfigure(args.smoke ? 4 : 16, args.smoke ? 8 : 64);

  rsp::bench::Table t({"sessions", "sess/core", "frames", "baseline f/s",
                       "fleet f/s", "speedup", "admit p99 us", "batched cyc",
                       "scalar cyc"});
  for (const rsp::Row& r : rows) {
    t.row({rsp::bench::fmt_int(static_cast<long long>(r.sessions)),
           rsp::bench::fmt(r.sessions_per_core, 1), rsp::bench::fmt_int(r.frames),
           rsp::bench::fmt(r.baseline_fps, 1), rsp::bench::fmt(r.fleet_fps, 1),
           rsp::bench::fmt(r.speedup(), 2), rsp::bench::fmt(r.admit_p99_us, 1),
           rsp::bench::fmt_int(r.stats.batched_cycles),
           rsp::bench::fmt_int(r.stats.scalar_cycles)});
  }
  t.print();
  rsp::bench::note("reconfigure p99 " + std::to_string(rc.p99_us) +
                   " us over " + std::to_string(rc.swaps) +
                   " cache-hit swaps");
  rsp::bench::note(
      "all sessions bit-identical to per-instance scalar kCompiled; every "
      "admission adopted the published program (0 compiles after warm-up)");

  const bool wrote = rsp::bench::write_json_checked(
      "BENCH_fleet.json", rsp::render_json(rows, rc, args.smoke));
  if (wrote) rsp::bench::note("wrote BENCH_fleet.json");
  return wrote ? 0 : 1;
}

// Figure 2: data rate vs. mobility for wireless access protocols.
//
// Reproduces the published envelope and backs the WLAN corner with
// measured link simulations: for several mobility classes (Doppler
// from terminal speed) we run 802.11a frames through a fading
// multipath channel at each rate mode and report the highest mode that
// still decodes error-free, plus the UMTS rake BER at chip rate under
// the same mobility.
#include <cmath>

#include "bench/report.hpp"
#include "src/common/rng.hpp"
#include "src/ofdm/golden.hpp"
#include "src/phy/channel.hpp"
#include "src/phy/ofdm_tx.hpp"
#include "src/phy/umts_tx.hpp"
#include "src/rake/receiver.hpp"
#include "src/sdr/rate_mobility.hpp"

namespace {

using namespace rsp;

/// Highest 802.11a mode that decodes a test PSDU error-free at the
/// given Doppler (5 GHz band) and Es/N0.
int max_wlan_rate(double speed_m_s, double esn0_db, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> psdu(1500);
  for (auto& b : psdu) b = rng.bit() ? 1 : 0;
  const double doppler = phy::doppler_hz_for_speed(speed_m_s, 5.2e9);
  int best = 0;
  for (const auto& mode : phy::all_rate_modes()) {
    phy::OfdmTransmitter tx;
    auto capture = tx.build_ppdu(psdu, mode.mbps);
    std::vector<CplxF> lead(150, CplxF{0, 0});
    capture.insert(capture.begin(), lead.begin(), lead.end());
    // Opposite-sign Doppler on the two paths: the per-carrier channel
    // shape drifts away from the one-shot long-preamble estimate, which
    // is what caps high-order modes under mobility.
    phy::MultipathChannel ch(
        {{0, {0.85, 0.0}, doppler}, {9, {0.4, 0.25}, -doppler}}, 20.0e6);
    Rng crng(seed + static_cast<std::uint64_t>(mode.mbps));
    const auto rx = ch.run(capture, esn0_db, crng);
    ofdm::OfdmRxConfig cfg;
    cfg.mbps = mode.mbps;
    ofdm::OfdmReceiver receiver(cfg);
    const auto res = receiver.receive(rx, psdu.size());
    if (!res.preamble_found || res.psdu.size() != psdu.size()) continue;
    int errors = 0;
    for (std::size_t i = 0; i < psdu.size(); ++i) {
      errors += (res.psdu[i] != psdu[i]) ? 1 : 0;
    }
    if (errors == 0) best = std::max(best, mode.mbps);
  }
  return best;
}

/// UMTS rake BER at a mobility class (2 GHz band, 3-path channel).
double umts_ber(double speed_m_s, double esn0_db, std::uint64_t seed) {
  Rng rng(seed);
  phy::BasestationConfig bs;
  bs.scrambling_code = 16;
  bs.cpich_gain = 0.5;
  phy::DpchConfig ch;
  ch.sf = 64;
  ch.code_index = 3;
  ch.gain = 0.7;
  ch.bits.resize(256);
  for (auto& b : ch.bits) b = rng.bit() ? 1 : 0;
  bs.channels.push_back(ch);
  phy::UmtsDownlinkTx tx(bs);
  const auto chips = tx.generate(64 * 256)[0];
  const double doppler = phy::doppler_hz_for_speed(speed_m_s, 2.0e9);
  phy::MultipathChannel mp(
      {{2, {0.7, 0.0}, doppler}, {9, {0.0, 0.5}, doppler * 0.8},
       {17, {0.3, -0.3}, doppler * 1.2}},
      3.84e6);
  const auto rx = mp.run(chips, esn0_db, rng);

  rake::RakeConfig cfg;
  cfg.scrambling_codes = {16};
  cfg.sf = 64;
  cfg.code_index = 3;
  cfg.paths_per_bs = 3;
  cfg.pilot_amplitude = 0.5;
  rake::RakeReceiver receiver(cfg);
  // The paper's channel estimator runs continuously; re-estimate every
  // slot (2560 chips) so the corrector follows the fading.
  const auto out = receiver.receive_tracked(rx, 2560);
  if (out.bits.empty()) return 0.5;
  int errors = 0;
  for (std::size_t i = 0; i < out.bits.size(); ++i) {
    errors += (out.bits[i] != ch.bits[i % ch.bits.size()]) ? 1 : 0;
  }
  return static_cast<double>(errors) / static_cast<double>(out.bits.size());
}

}  // namespace

int main(int argc, char** argv) {
  // Model-evaluation harness: already smoke-sized, so --smoke is
  // accepted (ctest -L perf) without changing the workload.
  (void)rsp::bench::parse_args(argc, argv);
  using namespace rsp;
  bench::title("Figure 2 — data rate vs. mobility for wireless access");

  bench::note("Published envelope (paper):");
  bench::Table env({"protocol", "mobility", "rate (Mbit/s)"});
  for (const auto& e : sdr::figure2_envelope()) {
    env.row({e.protocol, sdr::mobility_name(e.mobility),
             bench::fmt(e.rate_mbps, 4)});
  }
  env.print();

  bench::note("\nMeasured: highest error-free 802.11a mode vs. mobility "
              "(Es/N0 = 24 dB, 2-path differential-Doppler fading):");
  bench::Table wlan({"mobility", "speed (m/s)", "best rate (Mbit/s)"});
  for (const auto m :
       {sdr::Mobility::kIndoorStationary, sdr::Mobility::kIndoorWalking,
        sdr::Mobility::kOutdoorVehicle}) {
    const double v = sdr::mobility_speed(m);
    wlan.row({sdr::mobility_name(m), bench::fmt(v, 1),
              bench::fmt_int(max_wlan_rate(v, 24.0, 42))});
  }
  wlan.print();

  bench::note("\nMeasured: UMTS rake BER vs. mobility "
              "(Es/N0 = 6 dB, 3-path fading, SF 64):");
  bench::Table umts({"mobility", "speed (m/s)", "raw BER"});
  for (const auto m :
       {sdr::Mobility::kIndoorStationary, sdr::Mobility::kOutdoorWalking,
        sdr::Mobility::kOutdoorVehicle}) {
    const double v = sdr::mobility_speed(m);
    umts.row({sdr::mobility_name(m), bench::fmt(v, 1),
              bench::fmt(umts_ber(v, 6.0, 7), 4)});
  }
  umts.print();

  bench::note(
      "\nShape check: the WLAN protocols carry 54 Mbit/s only at low\n"
      "mobility and degrade to lower modes as Doppler grows, while the\n"
      "W-CDMA rake keeps a usable (low-BER) link across all mobility\n"
      "classes at far lower data rates — Figure 2's trade-off.");
  return 0;
}

// Figure 4: partitioning of the rake receiver onto DSP, dedicated
// hardware and the reconfigurable array.
//
// Prints the task-to-resource assignment with bottom-up load numbers
// for the paper's maximum scenario (18 virtual fingers), then runs an
// actual soft-handover reception and reports the DSP-side task split
// measured by the cost model.
#include "bench/report.hpp"
#include "src/common/rng.hpp"
#include "src/phy/channel.hpp"
#include "src/phy/umts_tx.hpp"
#include "src/rake/receiver.hpp"
#include "src/rake/scenario.hpp"
#include "src/sdr/partitioning.hpp"

int main(int argc, char** argv) {
  // Model-evaluation harness: already smoke-sized, so --smoke is
  // accepted (ctest -L perf) without changing the workload.
  (void)rsp::bench::parse_args(argc, argv);
  using namespace rsp;
  bench::title("Figure 4 — partitioning of the rake receiver");

  const auto tasks = sdr::rake_partitioning(rake::kMaxVirtualFingers);
  bench::Table t({"task", "resource", "Mops at full load"});
  for (const auto& task : tasks) {
    t.row({task.task, sdr::resource_name(task.resource),
           bench::fmt(task.mops, 1)});
  }
  t.print();

  bench::Table sum({"resource class", "total Mops", "share"});
  const double reconf = sdr::total_mops(tasks, sdr::Resource::kReconfigurable);
  const double ded = sdr::total_mops(tasks, sdr::Resource::kDedicated);
  const double dspm = sdr::total_mops(tasks, sdr::Resource::kDsp);
  const double all = reconf + ded + dspm;
  sum.row({"reconfigurable", bench::fmt(reconf, 1), bench::fmt(reconf / all, 2)});
  sum.row({"dedicated", bench::fmt(ded, 1), bench::fmt(ded / all, 2)});
  sum.row({"DSP", bench::fmt(dspm, 1), bench::fmt(dspm / all, 2)});
  sum.print();

  // Measured DSP split from an actual reception.
  Rng rng(11);
  std::vector<std::vector<CplxF>> streams;
  rake::RakeConfig cfg;
  for (int b = 0; b < 3; ++b) {
    phy::BasestationConfig bs;
    bs.scrambling_code = 16u * static_cast<std::uint32_t>(b + 1);
    bs.cpich_gain = 0.5;
    phy::DpchConfig ch;
    ch.sf = 64;
    ch.code_index = 3;
    ch.gain = 0.7;
    ch.bits.resize(128);
    for (auto& bit : ch.bits) bit = rng.bit() ? 1 : 0;
    bs.channels.push_back(ch);
    phy::UmtsDownlinkTx tx(bs);
    phy::MultipathChannel mp({{3 * b + 2, {0.7, 0.1}, 0.0},
                              {3 * b + 9, {0.0, 0.4}, 0.0}},
                             3.84e6);
    streams.push_back(mp.run(tx.generate(64 * 64)[0], 60.0, rng));
    cfg.scrambling_codes.push_back(bs.scrambling_code);
  }
  auto rx = phy::combine_basestations(streams);
  rx = phy::awgn(rx, 10.0, rng);
  cfg.sf = 64;
  cfg.code_index = 3;
  cfg.paths_per_bs = 2;
  dsp::DspModel dsp;
  rake::RakeReceiver receiver(cfg);
  const auto out = receiver.receive(rx, &dsp);

  bench::note("\nMeasured DSP-side task split (3 basestations x 2 paths, "
              "1.07 ms capture):");
  bench::Table m({"DSP task", "instructions", "cycles", "MIPS if repeated "
                  "every 10 ms"});
  for (const auto& [name, stats] : dsp.tasks()) {
    m.row({name, bench::fmt_int(stats.instructions),
           bench::fmt_int(stats.cycles),
           bench::fmt(static_cast<double>(stats.instructions) / 0.01 / 1e6,
                      1)});
  }
  m.print();
  bench::note("Active fingers assigned: " +
              bench::fmt_int(static_cast<long long>(out.fingers.size())));

  bench::note(
      "\nShape check: >90% of the operations are word-level streaming\n"
      "work on the reconfigurable array; the DSP carries only search/\n"
      "estimation/control — the paper's Figure 4 split.");
  return 0;
}

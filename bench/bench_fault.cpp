// Fault-injection overhead benchmark: the injector hook must be free
// when unused.  Measures cycles/sec of a streaming despreader workload
// in three modes:
//  - bare:  no injector installed (the tier-1 fast path),
//  - hooked: injector installed with an *empty* plan (pointer compare +
//    one no-op callback per cycle boundary),
//  - seu:   injector armed with a low-rate random SEU process (the
//    price of actually injecting).
// The bare-vs-hooked delta is the overhead claim guarded by ISSUE.md
// (<= 2%); bare and hooked outputs are cross-checked word-for-word so
// the claim cannot be met by accidentally changing behaviour.  Emits
// BENCH_fault.json.
#include <chrono>
#include <cstdio>
#include <utility>
#include <vector>

#include "bench/report.hpp"
#include "src/common/rng.hpp"
#include "src/rake/maps.hpp"
#include "src/xpp/fault.hpp"
#include "src/xpp/manager.hpp"

namespace rsp {
namespace {

using Clock = std::chrono::steady_clock;

enum class Mode { kBare, kHooked, kSeu };

struct Measurement {
  long long cycles = 0;
  long long fires = 0;
  double seconds = 0.0;
  std::size_t injections = 0;
  std::vector<xpp::Word> checksum;

  [[nodiscard]] double cycles_per_sec() const {
    return seconds > 0 ? static_cast<double>(cycles) / seconds : 0.0;
  }
};

std::vector<CplxI> random_chips(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<CplxI> out(n);
  for (auto& c : out) {
    c = {static_cast<int>(rng.below(2000)) - 1000,
         static_cast<int>(rng.below(2000)) - 1000};
  }
  return out;
}

Measurement run_stream(Mode mode, std::size_t n_chips) {
  const int sf = 16;
  const auto chips = random_chips(n_chips, 42);
  xpp::ConfigurationManager mgr;
  const auto finger = mgr.load(rake::maps::despreader_config(sf, 1));
  mgr.input(finger, "data").feed(rake::maps::pack_stream(chips));

  xpp::FaultPlan plan;
  if (mode == Mode::kSeu) {
    plan.seu.per_cycle_prob = 0.001;
    plan.seu.seed = 99;
    plan.seu.from = mgr.sim().cycle();
  }
  xpp::FaultInjector inj(std::move(plan));
  if (mode != Mode::kBare) mgr.sim().install_faults(&inj);

  Measurement m;
  const long long c0 = mgr.sim().cycle();
  const long long f0 = mgr.sim().total_fires();
  const auto t0 = Clock::now();
  (void)mgr.sim().run_until_quiescent(static_cast<long long>(n_chips) * 8);
  m.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  m.cycles = mgr.sim().cycle() - c0;
  m.fires = mgr.sim().total_fires() - f0;
  m.injections = inj.log().size();
  m.checksum = mgr.output(finger, "out").take();
  mgr.sim().install_faults(nullptr);
  return m;
}

/// Best-of-@p reps with the three modes interleaved per repetition, so
/// slow machine drift (frequency scaling, a noisy neighbour) hits all
/// modes alike instead of biasing whichever ran last.
void measure_interleaved(std::size_t n_chips, int reps, Measurement& bare,
                         Measurement& hooked, Measurement& seu) {
  const auto keep = [](Measurement& best, Measurement m) {
    if (best.seconds == 0.0 || m.seconds < best.seconds) best = std::move(m);
  };
  for (int r = 0; r < reps; ++r) {
    keep(bare, run_stream(Mode::kBare, n_chips));
    keep(hooked, run_stream(Mode::kHooked, n_chips));
    keep(seu, run_stream(Mode::kSeu, n_chips));
  }
}

bool write_json(const Measurement& bare, const Measurement& hooked,
                const Measurement& seu, double overhead_pct) {
  std::string j;
  bench::appendf(j, "{\n  \"bench\": \"bench_fault\",\n");
  bench::appendf(j, "  %s,\n", bench::host_context_json().c_str());
  bench::appendf(j, "  \"unit\": \"simulated_cycles_per_second\",\n");
  bench::appendf(j, "  \"workload\": \"despreader_sf16_stream\",\n");
  // Doubles go through bench::json_num so a comma-decimal LC_NUMERIC
  // locale cannot produce invalid JSON (and write_json_checked re-runs
  // the validator over the whole payload before it reaches disk).
  bench::appendf(j, "  \"cycles\": %lld,\n", bare.cycles);
  bench::appendf(j, "  \"bare_cps\": %s,\n",
                 bench::json_num(bare.cycles_per_sec(), 0).c_str());
  bench::appendf(j, "  \"hooked_empty_plan_cps\": %s,\n",
                 bench::json_num(hooked.cycles_per_sec(), 0).c_str());
  bench::appendf(j, "  \"seu_armed_cps\": %s,\n",
                 bench::json_num(seu.cycles_per_sec(), 0).c_str());
  bench::appendf(j, "  \"hook_overhead_pct\": %s,\n",
                 bench::json_num(overhead_pct, 2).c_str());
  bench::appendf(j, "  \"hook_overhead_target_pct\": 2.0,\n");
  bench::appendf(j, "  \"seu_injections\": %zu\n", seu.injections);
  bench::appendf(j, "}\n");
  return bench::write_json_checked("BENCH_fault.json", j);
}

}  // namespace
}  // namespace rsp

int main(int argc, char** argv) {
  const rsp::bench::Args args = rsp::bench::parse_args(argc, argv);
  rsp::bench::title("Fault-injection overhead: bare vs hooked vs SEU-armed");

  const std::size_t kChips = args.smoke ? 4096 : 200000;
  rsp::Measurement bare, hooked, seu;
  rsp::measure_interleaved(kChips, args.smoke ? 1 : 5, bare, hooked, seu);

  // An installed-but-empty plan must not change behaviour in any way.
  const bool identical = bare.checksum == hooked.checksum &&
                         bare.cycles == hooked.cycles &&
                         bare.fires == hooked.fires;
  if (!identical) {
    std::fprintf(stderr, "DIVERGENCE: empty-plan run differs from bare run\n");
  }

  const double overhead_pct =
      bare.cycles_per_sec() > 0
          ? (bare.cycles_per_sec() - hooked.cycles_per_sec()) /
                bare.cycles_per_sec() * 100.0
          : 0.0;

  rsp::bench::Table t(
      {"mode", "cycles", "fires", "cyc/s", "injections", "vs bare"});
  const auto rel = [&](const rsp::Measurement& m) {
    return rsp::bench::fmt(
               bare.cycles_per_sec() > 0
                   ? m.cycles_per_sec() / bare.cycles_per_sec() * 100.0
                   : 0.0,
               1) +
           "%";
  };
  for (const auto& [name, m] :
       {std::pair<const char*, const rsp::Measurement&>{"bare", bare},
        {"hooked (empty plan)", hooked},
        {"seu armed (p=0.001)", seu}}) {
    t.row({name, rsp::bench::fmt_int(m.cycles), rsp::bench::fmt_int(m.fires),
           rsp::bench::fmt(m.cycles_per_sec(), 0),
           rsp::bench::fmt_int(static_cast<long long>(m.injections)),
           rel(m)});
  }
  t.print();
  rsp::bench::note(identical
                       ? "cross-check: empty-plan run bit-identical to bare"
                       : "cross-check: FAILED — empty plan changed behaviour");
  rsp::bench::note("target: hook overhead <= 2% (bare vs hooked)");
  const bool wrote = rsp::write_json(bare, hooked, seu, overhead_pct);
  if (wrote) rsp::bench::note("wrote BENCH_fault.json");
  return identical && wrote ? 0 : 1;
}

// Figure 5: the rake descrambler on the reconfigurable array —
// scrambling-code multiplexer (2-bit -> packed +-1+-j constants)
// feeding a complex multiplication.
//
// Measures: resource usage, pipeline throughput (cycles per chip),
// bit-exactness vs. the golden chain, and the real-time margin at the
// paper's 69.12 MHz operating point for the 18-finger scenario.
#include "bench/report.hpp"
#include "src/common/rng.hpp"
#include "src/dedhw/umts_scrambler.hpp"
#include "src/rake/maps.hpp"
#include "src/rake/scenario.hpp"

int main(int argc, char** argv) {
  // Model-evaluation harness: already smoke-sized, so --smoke is
  // accepted (ctest -L perf) without changing the workload.
  (void)rsp::bench::parse_args(argc, argv);
  using namespace rsp;
  bench::title("Figure 5 — rake descrambler on the reconfigurable array");

  Rng rng(1);
  const std::size_t n_chips = 4096;
  std::vector<CplxI> chips(n_chips);
  for (auto& c : chips) {
    c = {static_cast<int>(rng.below(2048)) - 1024,
         static_cast<int>(rng.below(2048)) - 1024};
  }
  dedhw::UmtsScrambler scr(16);
  std::vector<std::uint8_t> code2(n_chips);
  for (auto& c : code2) c = scr.next2();

  xpp::ConfigurationManager mgr;
  xpp::RunResult stats;
  const auto mapped = rake::maps::run_descrambler(mgr, chips, code2, &stats);
  const auto golden = rake::descramble(chips, code2);
  const bool exact = mapped == golden;

  const double cycles_per_chip =
      static_cast<double>(stats.cycles) / static_cast<double>(n_chips);
  bench::Table t({"metric", "value"});
  t.row({"chips processed", bench::fmt_int(static_cast<long long>(n_chips))});
  t.row({"bit-exact vs golden", exact ? "yes" : "NO"});
  t.row({"ALU-PAEs", bench::fmt_int(stats.info.alu_cells)});
  t.row({"RAM-PAEs", bench::fmt_int(stats.info.ram_cells)});
  t.row({"I/O channels", bench::fmt_int(stats.info.io_channels)});
  t.row({"routing segments", bench::fmt_int(stats.info.routing_segments)});
  t.row({"configuration load cycles", bench::fmt_int(stats.load_cycles)});
  t.row({"execution cycles", bench::fmt_int(stats.cycles)});
  t.row({"cycles per chip", bench::fmt(cycles_per_chip, 3)});
  t.print();

  bench::note("\nReal-time margin:");
  bench::Table rt({"operating point", "clock (MHz)", "chip rate served (Mchip/s)",
                   "margin vs 3.84 Mchip/s"});
  for (const double clk : {3.84e6, rake::kMaxFingerClockHz}) {
    const double served = clk / cycles_per_chip / 1e6;
    rt.row({clk > 4e6 ? "18-finger TDM (69.12 MHz)" : "single finger (3.84 MHz)",
            bench::fmt(clk / 1e6, 2), bench::fmt(served, 2),
            bench::fmt(served / 3.84, 2)});
  }
  rt.print();

  bench::note(
      "\nShape check: two ALU-PAEs sustain one chip per cycle, so at the\n"
      "69.12 MHz operating point the single physical descrambler serves\n"
      "all 18 time-multiplexed fingers — the paper's Figure 5 datapath.");
  return 0;
}

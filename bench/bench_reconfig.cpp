// Reconfiguration-latency benchmark: full release+load vs delta
// reconfiguration vs the pre-placed (park/acquire) configuration pool,
// measured in deterministic configuration cycles across three workload
// switch pairs:
//  - fft64 stage 0 -> stage 1 (near-identical configurations — the
//    delta path's best case: only the address/twiddle generators
//    change),
//  - Viterbi ACS -> channelizer (disjoint workloads — the delta path's
//    worst case: everything changes, cost degrades toward a full load),
//  - channelizer -> channelizer (identical target — the pure re-arm
//    floor, kDeltaCyclesBase).
// After every switch strategy the target configuration is driven with
// the same input and the outputs are cross-checked word-for-word, so a
// latency win can never come from diverging behaviour.  Emits
// BENCH_reconfig.json.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/report.hpp"
#include "src/chan/maps.hpp"
#include "src/common/rng.hpp"
#include "src/ofdm/maps.hpp"
#include "src/vit/maps.hpp"
#include "src/xpp/manager.hpp"

namespace rsp {
namespace {

/// A switchable workload: its configuration plus a driver that streams
/// a deterministic input through the live instance and returns every
/// output word produced.
struct Workload {
  std::string name;
  xpp::Configuration cfg;
  std::vector<xpp::Word> (*drive)(xpp::ConfigurationManager&, xpp::ConfigId);
};

std::vector<xpp::Word> drive_fft_stage(xpp::ConfigurationManager& mgr,
                                       xpp::ConfigId id) {
  Rng rng(11);
  std::vector<xpp::Word> data(phy::kFftSize);
  for (auto& w : data) {
    w = pack_iq(static_cast<int>(rng.below(2000)) - 1000,
                static_cast<int>(rng.below(2000)) - 1000);
  }
  const std::vector<xpp::Word> ones(phy::kFftSize, 1);
  mgr.input(id, "data").feed(data);
  mgr.sim().run_until_quiescent(100000);
  mgr.input(id, "go").feed(ones);
  mgr.sim().run_until_quiescent(100000);
  mgr.input(id, "go2").feed(ones);
  mgr.sim().run_until_quiescent(100000);
  return mgr.output(id, "out").take();
}

std::vector<xpp::Word> drive_viterbi(xpp::ConfigurationManager& mgr,
                                     xpp::ConfigId id) {
  Rng rng(12);
  std::vector<xpp::Word> feed;
  for (int step = 0; step < 8; ++step) {
    const xpp::Word w = pack_iq(static_cast<int>(rng.below(4095)) - 2047,
                                static_cast<int>(rng.below(4095)) - 2047);
    for (int s = 0; s < 64; ++s) feed.push_back(w);
  }
  mgr.input(id, "soft").feed(feed);
  auto& sink = mgr.output(id, "surv");
  for (long long g = 0; g < 100000 && sink.data().size() < feed.size(); ++g) {
    mgr.sim().step();
  }
  return sink.take();
}

std::vector<xpp::Word> drive_channelizer(xpp::ConfigurationManager& mgr,
                                         xpp::ConfigId id) {
  Rng rng(13);
  std::vector<xpp::Word> feed(64);
  for (auto& w : feed) {
    w = pack_iq(static_cast<int>(rng.below(4095)) - 2047,
                static_cast<int>(rng.below(4095)) - 2047);
  }
  mgr.input(id, "x").feed(feed);
  const std::size_t want = feed.size() / chan::kBands;
  const auto drained = [&] {
    for (int b = 0; b < chan::kBands; ++b) {
      if (mgr.output(id, "band" + std::to_string(b)).data().size() < want) {
        return false;
      }
    }
    return true;
  };
  for (long long g = 0; g < 100000 && !drained(); ++g) mgr.sim().step();
  std::vector<xpp::Word> all;
  for (int b = 0; b < chan::kBands; ++b) {
    const auto words = mgr.output(id, "band" + std::to_string(b)).take();
    all.insert(all.end(), words.begin(), words.end());
  }
  return all;
}

struct PairResult {
  std::string pair;
  long long full_cycles = 0;
  long long delta_cycles = 0;
  long long cached_cycles = 0;
  int changed_objects = 0;
  int changed_nets = 0;

  [[nodiscard]] double delta_speedup() const {
    return delta_cycles > 0
               ? static_cast<double>(full_cycles) / delta_cycles
               : 0.0;
  }
  [[nodiscard]] double cached_speedup() const {
    return cached_cycles > 0
               ? static_cast<double>(full_cycles) / cached_cycles
               : 0.0;
  }
};

void check_identical(const std::vector<xpp::Word>& a,
                     const std::vector<xpp::Word>& b, const std::string& what) {
  if (a != b) {
    std::fprintf(stderr,
                 "bench_reconfig: %s: post-switch outputs diverged between "
                 "strategies\n",
                 what.c_str());
    std::exit(1);
  }
}

/// Measure the three switch strategies for from -> to.  Every strategy
/// starts from a fresh manager with `from` live and dirtied, and ends
/// with `to` driven; all three output streams must agree.
PairResult measure(const Workload& from, const Workload& to) {
  PairResult r;
  r.pair = from.name + " -> " + to.name;
  const xpp::ConfigDelta d = xpp::config_delta(from.cfg, to.cfg);
  r.changed_objects = d.changed_objects;
  r.changed_nets = d.changed_nets;

  // Strategy 1: full release + load.
  std::vector<xpp::Word> ref_out;
  {
    xpp::ConfigurationManager mgr;
    const xpp::ConfigId a = mgr.load(from.cfg);
    (void)from.drive(mgr, a);
    const long long t0 = mgr.total_config_cycles();
    mgr.release(a);
    const xpp::ConfigId b = mgr.load(to.cfg);
    r.full_cycles = mgr.total_config_cycles() - t0;
    ref_out = to.drive(mgr, b);
  }

  // Strategy 2: delta reconfiguration of the live instance.
  {
    xpp::ConfigurationManager mgr;
    const xpp::ConfigId a = mgr.load(from.cfg);
    (void)from.drive(mgr, a);
    const long long t0 = mgr.total_config_cycles();
    const xpp::DeltaReport rep = mgr.load_delta(a, to.cfg);
    r.delta_cycles = mgr.total_config_cycles() - t0;
    if (r.delta_cycles != rep.delta_cycles ||
        r.delta_cycles != xpp::config_delta_cycles(from.cfg, to.cfg)) {
      std::fprintf(stderr, "bench_reconfig: %s: delta cost accounting skew\n",
                   r.pair.c_str());
      std::exit(1);
    }
    check_identical(ref_out, to.drive(mgr, rep.id), r.pair + " (delta)");
  }

  // Strategy 3: pre-placed pool — both configurations keep their
  // placements; the switch is park(live) + acquire(parked).  When the
  // target IS the live configuration (re-arm pair), one pooled
  // instance serves both roles — co-placing two copies would be
  // pointless (and the channelizer would not fit twice).
  {
    xpp::ConfigurationManager mgr;
    const xpp::ConfigId a = mgr.load(from.cfg);
    const bool rearm = from.cfg.checksum == to.cfg.checksum;
    const xpp::ConfigId b = rearm ? a : mgr.load(to.cfg);
    if (!rearm) mgr.park(b);
    (void)from.drive(mgr, a);
    const long long t0 = mgr.total_config_cycles();
    mgr.park(a);
    mgr.acquire(b);
    r.cached_cycles = mgr.total_config_cycles() - t0;
    check_identical(ref_out, to.drive(mgr, b), r.pair + " (cached)");
  }
  return r;
}

}  // namespace
}  // namespace rsp

int main(int argc, char** argv) {
  // Latency is measured in deterministic configuration cycles, so the
  // workload is already smoke-sized; --smoke runs the identical
  // harness (ctest -L perf).
  const auto args = rsp::bench::parse_args(argc, argv);
  using namespace rsp;
  bench::title(
      "Reconfiguration latency — full load vs delta vs pre-placed pool");

  const Workload fft0{"fft64_s0", ofdm::maps::fft64_stage_config(0),
                      &drive_fft_stage};
  const Workload fft1{"fft64_s1", ofdm::maps::fft64_stage_config(1),
                      &drive_fft_stage};
  const Workload vit{"viterbi_acs", vit::acs_config(), &drive_viterbi};
  const Workload chan{"channelizer", chan::channelizer_config(),
                      &drive_channelizer};

  std::vector<PairResult> results;
  results.push_back(measure(fft0, fft1));
  results.push_back(measure(vit, chan));
  results.push_back(measure(chan, chan));

  bench::Table t({"switch", "full (cyc)", "delta (cyc)", "cached (cyc)",
                  "delta speedup", "cached speedup", "d-obj", "d-net"});
  for (const auto& r : results) {
    t.row({r.pair, bench::fmt_int(r.full_cycles),
           bench::fmt_int(r.delta_cycles), bench::fmt_int(r.cached_cycles),
           bench::json_num(r.delta_speedup(), 2) + "x",
           bench::json_num(r.cached_speedup(), 2) + "x",
           bench::fmt_int(r.changed_objects), bench::fmt_int(r.changed_nets)});
  }
  t.print();

  std::string j = "{\n";
  bench::appendf(j, "  \"bench\": \"reconfig\",\n");
  bench::appendf(j, "  \"smoke\": %s,\n", args.smoke ? "true" : "false");
  bench::appendf(j, "  %s,\n", bench::host_context_json().c_str());
  bench::appendf(j, "  \"pairs\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    bench::appendf(
        j,
        "    {\"pair\": \"%s\", \"full_cycles\": %lld, "
        "\"delta_cycles\": %lld, \"cached_cycles\": %lld, "
        "\"changed_objects\": %d, \"changed_nets\": %d, "
        "\"delta_speedup\": %s, \"cached_speedup\": %s}%s\n",
        r.pair.c_str(), r.full_cycles, r.delta_cycles, r.cached_cycles,
        r.changed_objects, r.changed_nets,
        bench::json_num(r.delta_speedup(), 3).c_str(),
        bench::json_num(r.cached_speedup(), 3).c_str(),
        i + 1 < results.size() ? "," : "");
  }
  bench::appendf(j, "  ]\n}\n");
  if (bench::write_json_checked("BENCH_reconfig.json", j)) {
    bench::note("wrote BENCH_reconfig.json");
  } else {
    return 1;
  }

  // Acceptance gate: on at least one pair, both fast paths must beat
  // the full release+load by >= 2x.
  bool gate = false;
  for (const auto& r : results) {
    if (r.delta_speedup() >= 2.0 && r.cached_speedup() >= 2.0) gate = true;
  }
  if (!gate) {
    std::fprintf(stderr,
                 "bench_reconfig: no switch pair reached the 2x bar\n");
    return 1;
  }
  bench::note(
      "\nShape check: near-identical configurations switch for a few\n"
      "cycles (the diff is a handful of objects), disjoint workloads\n"
      "degrade toward the full-load cost, and the pre-placed pool makes\n"
      "switch latency independent of configuration size — the paper's\n"
      "cached-configuration story (Section 4).");
  return 0;
}

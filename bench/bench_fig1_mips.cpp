// Figure 1: processing power requirements of wireless access protocols.
//
// Paper series (industry consensus): GSM ~10 MIPS, GPRS/HSCSD ~100,
// EDGE ~1000, UMTS/W-CDMA up to 10000, OFDM WLAN ~5000.  The modeled
// column is computed bottom-up from the operation counts of the
// receiver chains implemented in this repository.
#include "bench/report.hpp"
#include "src/rake/scenario.hpp"
#include "src/sdr/mips_model.hpp"

int main(int argc, char** argv) {
  // Model-evaluation harness: already smoke-sized, so --smoke is
  // accepted (ctest -L perf) without changing the workload.
  (void)rsp::bench::parse_args(argc, argv);
  using namespace rsp;
  bench::title("Figure 1 — MIPS requirements of wireless access protocols");

  bench::Table t({"protocol", "paper MIPS", "modeled MIPS", "model/paper",
                  "peak rate (Mbit/s)"});
  for (const auto& p : sdr::figure1_series()) {
    t.row({p.name, bench::fmt(p.paper_mips, 0), bench::fmt(p.modeled_mips, 0),
           bench::fmt(p.modeled_mips / p.paper_mips, 2),
           bench::fmt(p.data_rate_mbps, 4)});
  }
  t.print();

  bench::note("\nUMTS demand vs. active rake fingers (bottom-up model):");
  bench::Table u({"virtual fingers", "modeled MIPS"});
  for (const int f : {1, 3, 6, 12, rake::kMaxVirtualFingers}) {
    u.row({bench::fmt_int(f), bench::fmt(sdr::umts_rake_mips(f), 0)});
  }
  u.print();

  bench::note("\nOFDM WLAN demand vs. rate mode (bottom-up model):");
  bench::Table o({"rate (Mbit/s)", "modeled MIPS"});
  for (const int r : {6, 12, 24, 54}) {
    o.row({bench::fmt_int(r), bench::fmt(sdr::ofdm_wlan_mips(r), 0)});
  }
  o.print();

  bench::note(
      "\nShape check: demands rise by ~1 order of magnitude per protocol\n"
      "generation and 3G-class protocols sit in the thousands of MIPS —\n"
      "beyond any single 1600-MIPS DSP, which is the paper's motivation\n"
      "for the reconfigurable array.");
  return 0;
}

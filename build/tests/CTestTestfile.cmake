# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_xpp[1]_include.cmake")
include("/root/repo/build/tests/test_dedhw[1]_include.cmake")
include("/root/repo/build/tests/test_phy[1]_include.cmake")
include("/root/repo/build/tests/test_rake[1]_include.cmake")
include("/root/repo/build/tests/test_ofdm[1]_include.cmake")
include("/root/repo/build/tests/test_sdr[1]_include.cmake")
include("/root/repo/build/tests/test_dsp[1]_include.cmake")
include("/root/repo/build/tests/test_gsm[1]_include.cmake")

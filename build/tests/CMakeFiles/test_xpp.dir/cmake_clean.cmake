file(REMOVE_RECURSE
  "CMakeFiles/test_xpp.dir/xpp/test_alu.cpp.o"
  "CMakeFiles/test_xpp.dir/xpp/test_alu.cpp.o.d"
  "CMakeFiles/test_xpp.dir/xpp/test_alu_boundaries.cpp.o"
  "CMakeFiles/test_xpp.dir/xpp/test_alu_boundaries.cpp.o.d"
  "CMakeFiles/test_xpp.dir/xpp/test_array.cpp.o"
  "CMakeFiles/test_xpp.dir/xpp/test_array.cpp.o.d"
  "CMakeFiles/test_xpp.dir/xpp/test_builder.cpp.o"
  "CMakeFiles/test_xpp.dir/xpp/test_builder.cpp.o.d"
  "CMakeFiles/test_xpp.dir/xpp/test_counter.cpp.o"
  "CMakeFiles/test_xpp.dir/xpp/test_counter.cpp.o.d"
  "CMakeFiles/test_xpp.dir/xpp/test_macros.cpp.o"
  "CMakeFiles/test_xpp.dir/xpp/test_macros.cpp.o.d"
  "CMakeFiles/test_xpp.dir/xpp/test_manager.cpp.o"
  "CMakeFiles/test_xpp.dir/xpp/test_manager.cpp.o.d"
  "CMakeFiles/test_xpp.dir/xpp/test_net.cpp.o"
  "CMakeFiles/test_xpp.dir/xpp/test_net.cpp.o.d"
  "CMakeFiles/test_xpp.dir/xpp/test_nml.cpp.o"
  "CMakeFiles/test_xpp.dir/xpp/test_nml.cpp.o.d"
  "CMakeFiles/test_xpp.dir/xpp/test_nml_assets.cpp.o"
  "CMakeFiles/test_xpp.dir/xpp/test_nml_assets.cpp.o.d"
  "CMakeFiles/test_xpp.dir/xpp/test_nml_equiv.cpp.o"
  "CMakeFiles/test_xpp.dir/xpp/test_nml_equiv.cpp.o.d"
  "CMakeFiles/test_xpp.dir/xpp/test_pipeline.cpp.o"
  "CMakeFiles/test_xpp.dir/xpp/test_pipeline.cpp.o.d"
  "CMakeFiles/test_xpp.dir/xpp/test_ram.cpp.o"
  "CMakeFiles/test_xpp.dir/xpp/test_ram.cpp.o.d"
  "CMakeFiles/test_xpp.dir/xpp/test_stress.cpp.o"
  "CMakeFiles/test_xpp.dir/xpp/test_stress.cpp.o.d"
  "test_xpp"
  "test_xpp.pdb"
  "test_xpp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/rsp_xpp.dir/alu.cpp.o"
  "CMakeFiles/rsp_xpp.dir/alu.cpp.o.d"
  "CMakeFiles/rsp_xpp.dir/array.cpp.o"
  "CMakeFiles/rsp_xpp.dir/array.cpp.o.d"
  "CMakeFiles/rsp_xpp.dir/builder.cpp.o"
  "CMakeFiles/rsp_xpp.dir/builder.cpp.o.d"
  "CMakeFiles/rsp_xpp.dir/manager.cpp.o"
  "CMakeFiles/rsp_xpp.dir/manager.cpp.o.d"
  "CMakeFiles/rsp_xpp.dir/nml.cpp.o"
  "CMakeFiles/rsp_xpp.dir/nml.cpp.o.d"
  "CMakeFiles/rsp_xpp.dir/ram.cpp.o"
  "CMakeFiles/rsp_xpp.dir/ram.cpp.o.d"
  "CMakeFiles/rsp_xpp.dir/runner.cpp.o"
  "CMakeFiles/rsp_xpp.dir/runner.cpp.o.d"
  "CMakeFiles/rsp_xpp.dir/sim.cpp.o"
  "CMakeFiles/rsp_xpp.dir/sim.cpp.o.d"
  "CMakeFiles/rsp_xpp.dir/types.cpp.o"
  "CMakeFiles/rsp_xpp.dir/types.cpp.o.d"
  "librsp_xpp.a"
  "librsp_xpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsp_xpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
